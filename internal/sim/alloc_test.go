package sim

import (
	"testing"
	"time"
)

// TestSleepDoesNotAllocate pins the fiber sleep round trip — schedule,
// yield to the engine, dispatch, resume — at zero allocations once the
// event free list is warm. Sleep is the inner loop of every simulated
// workload; a per-sleep allocation (a closure, a fresh event) would
// dominate hot-path profiles.
func TestSleepDoesNotAllocate(t *testing.T) {
	e := New(1)
	got := -1.0
	e.Go("sleeper", func(f *Fiber) {
		f.Sleep(time.Microsecond) // warm the event free list
		got = testing.AllocsPerRun(200, func() {
			f.Sleep(time.Microsecond)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("fiber sleep allocates %v objects/op", got)
	}
}
