package sim

import (
	"strings"
	"testing"
	"time"
)

// TestEveryCancelLeavesNoTrace pins the Every-cancel fix: cancelling a
// periodic timer must neutralize its pending tick in place, so the dead
// tick neither executes, nor counts in Events(), nor advances the clock
// to its timestamp. (Before the fix the closure checked a stopped flag
// but the event still dispatched, bumping eventCount and dragging the
// run's end time to the cancelled tick.)
func TestEveryCancelLeavesNoTrace(t *testing.T) {
	e := New(1)
	ticks := 0
	cancel := e.Every(10*time.Millisecond, func() { ticks++ })
	e.Schedule(25*time.Millisecond, cancel)
	if err := e.RunUntil(Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2 (at 10ms and 20ms)", ticks)
	}
	// Exactly three events execute: two ticks and the cancel callback.
	// The neutralized tick at 30ms must not appear in the count.
	if got := e.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3 (cancelled tick must not count)", got)
	}
	// The clock stops at the last real event, not at the dead tick.
	if want := Time(25 * time.Millisecond); e.Now() != want {
		t.Fatalf("Now() = %v, want %v (cancelled tick advanced the clock)", e.Now(), want)
	}
	// Cancel is idempotent, and the engine stays usable: a fresh event
	// scheduled past the neutralized tick's slot runs normally even
	// though its struct may recycle the dead tick's.
	cancel()
	ran := false
	e.ScheduleAt(Time(50*time.Millisecond), func() { ran = true })
	if err := e.RunUntil(Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !ran || e.Events() != 4 {
		t.Fatalf("post-cancel event: ran=%v Events()=%d, want true/4", ran, e.Events())
	}
	cancel()
}

// TestEveryCancelFromInsideTick cancels the timer from its own callback:
// the next tick is already scheduled when fn runs, so cancel must reach
// forward and neutralize it.
func TestEveryCancelFromInsideTick(t *testing.T) {
	e := New(1)
	ticks := 0
	var cancel func()
	cancel = e.Every(10*time.Millisecond, func() {
		ticks++
		if ticks == 3 {
			cancel()
		}
	})
	if err := e.RunUntil(Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if want := Time(30 * time.Millisecond); e.Now() != want {
		t.Fatalf("Now() = %v, want %v", e.Now(), want)
	}
	if got := e.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}
}

// TestEventCallbackPanicOnFiberGoroutine pins panic forwarding in the
// token-handoff scheduler: when an event callback panics while a fiber's
// goroutine holds the scheduling token (here: a fiber sleeps across the
// callback's timestamp, so the fiber runs the dispatcher), the panic
// must surface from RunUntil on the caller's goroutine, not kill the
// fiber's goroutine silently.
func TestEventCallbackPanicOnFiberGoroutine(t *testing.T) {
	e := New(1)
	e.Go("sleeper", func(f *Fiber) {
		f.Sleep(20 * time.Millisecond)
	})
	e.Schedule(10*time.Millisecond, func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunUntil did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "event callback panicked") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic = %v, want event-callback message containing boom", r)
		}
	}()
	_ = e.Run()
}

// TestSameTimestampCohortOrder pins the nowQueue fast path against the
// heap: events spawned at the current timestamp bypass the heap, but
// dispatch order must remain the global (at, seq) order — an equal-time
// event that is already in the heap with a smaller seq runs before a
// queue entry with a larger one.
func TestSameTimestampCohortOrder(t *testing.T) {
	e := New(1)
	var order []string
	at := Time(10 * time.Millisecond)
	e.ScheduleAt(at, func() { // seq 1
		order = append(order, "A")
		// Same-timestamp child: enters the nowQueue with a seq larger
		// than B's, so B (heap) must still run first.
		e.Schedule(0, func() {
			order = append(order, "C")
			e.Schedule(0, func() { order = append(order, "E") })
		})
	})
	e.ScheduleAt(at, func() { // seq 2
		order = append(order, "B")
		e.Schedule(0, func() { order = append(order, "D") })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(order, ""), "ABCDE"; got != want {
		t.Fatalf("dispatch order = %q, want %q", got, want)
	}
	if e.Now() != at {
		t.Fatalf("Now() = %v, want %v (same-timestamp children must not advance the clock)", e.Now(), at)
	}
}

// TestHeapManyTimestamps stresses the 4-ary heap shape: a few thousand
// events at distinct pseudo-random timestamps must dispatch in
// nondecreasing time order with ties broken by schedule order.
func TestHeapManyTimestamps(t *testing.T) {
	e := New(7)
	const n = 5000
	var fired []Time
	for i := 0; i < n; i++ {
		d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("event %d fired at %v after %v", i, fired[i], fired[i-1])
		}
	}
}
