package sim

import (
	"fmt"
	runtimedebug "runtime/debug"
	"time"
)

// Fiber is a process-oriented coroutine scheduled by an Engine. A fiber's
// body runs on its own goroutine, but the engine guarantees that at most
// one fiber (or event callback) executes at a time; control transfers by
// handing a single scheduling token between goroutines (Engine.dispatch).
// All Fiber methods except Unpark must be called from within the fiber's
// own body.
type Fiber struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool

	// trace is an opaque tracing context (a span ID) that travels with
	// the fiber, the simulation's analogue of a goroutine-local value.
	// Zero means untraced.
	trace uint64

	// onExit callbacks run (in engine context) after the body returns.
	onExit []func()
}

// Go creates a fiber named name and schedules its body to start at the
// current virtual time. The body receives the fiber itself so that it can
// sleep, park, and spawn further work.
//
//ivy:hostworld launches and parks the goroutine backing the fiber
func (e *Engine) Go(name string, body func(f *Fiber)) *Fiber {
	f := &Fiber{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	e.live++
	// This is the one sanctioned goroutine launch in the simulated
	// world: the goroutine backing the fiber itself. It runs only under
	// the engine's token handshake (exactly one unit of work executes at
	// any moment), so it adds no scheduling freedom.
	//ivyvet:ignore fiber backing goroutine; serialized by the engine handshake
	go func() {
		// Wait for the first resume before touching any engine state.
		<-f.resume
		defer func() {
			if r := recover(); r != nil {
				// Carry the failure to the RunUntil caller, which
				// re-panics with the fiber's identity; this goroutine
				// dies holding nothing.
				f.done = true
				e.live--
				// Keep the fiber's own stack: the engine re-panics from
				// RunUntil, whose stack says nothing about where in the
				// simulated program the fault happened.
				e.panicMsg = fmt.Sprintf("sim: fiber %q panicked: %v\n%s", f.name, r, string(runtimedebug.Stack()))
				e.engineResume <- struct{}{}
				return
			}
			f.done = true
			e.live--
			for i := len(f.onExit) - 1; i >= 0; i-- {
				f.onExit[i]()
			}
			// The body is finished but this goroutine still holds the
			// scheduling token: run the dispatcher one last time in
			// dying mode, which hands the token to the next event's
			// owner and lets the goroutine exit.
			e.dispatch(f, true)
		}()
		body(f)
	}()
	e.scheduleFiberAt(e.now, f)
	return f
}

// Name returns the fiber's diagnostic name.
func (f *Fiber) Name() string { return f.name }

// Trace returns the fiber's tracing context (0 = untraced).
func (f *Fiber) Trace() uint64 { return f.trace }

// SetTrace installs a tracing context on the fiber. Callers save and
// restore the previous value around nested traced regions.
func (f *Fiber) SetTrace(t uint64) { f.trace = t }

// Engine returns the engine scheduling this fiber.
func (f *Fiber) Engine() *Engine { return f.eng }

// Done reports whether the fiber body has returned.
func (f *Fiber) Done() bool { return f.done }

// OnExit registers fn to run in engine context when the fiber terminates.
// Callbacks run in reverse registration order, like defer.
func (f *Fiber) OnExit(fn func()) { f.onExit = append(f.onExit, fn) }

// Now returns the current virtual time.
func (f *Fiber) Now() Time { return f.eng.now }

// yield gives control back to the engine by running the dispatcher on
// this goroutine. If the next event resumes this same fiber, yield
// returns without a single channel operation or goroutine switch; only a
// transfer to a different fiber (or the end of the run) parks this one.
// The fiber must have arranged to be resumed later (via a scheduled event
// or an Unpark) or it will park forever and eventually surface in a
// deadlock report.
func (f *Fiber) yield(why string) {
	f.eng.parked[f] = why
	f.eng.dispatch(f, false)
}

// Sleep advances the fiber by d of virtual time. Other events and fibers
// run in the meantime. Sleeping a non-positive duration yields the
// processor without advancing the clock.
func (f *Fiber) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.eng.scheduleFiberAt(f.eng.now.Add(d), f)
	// A static reason keeps the hot path free of fmt formatting; the
	// wakeup is already scheduled, so the park can never be permanent
	// and the precise duration never reaches a deadlock report.
	f.yield("sleeping")
}

// Park blocks the fiber until some other simulation code calls Unpark.
// why is shown in deadlock reports.
func (f *Fiber) Park(why string) {
	f.yield(why)
}

// Unpark schedules f to resume at the current virtual time. It must be
// called from simulation context (another fiber or an event callback),
// never from the parked fiber itself. Unparking a fiber that is not
// parked is a bug in the caller and panics via the engine.
func (f *Fiber) Unpark() {
	f.eng.scheduleFiberAt(f.eng.now, f)
}

// UnparkAt schedules f to resume at absolute time at.
func (f *Fiber) UnparkAt(at Time) {
	f.eng.scheduleFiberAt(at, f)
}
