package sim

// Cond is a condition variable for fibers. Unlike sync.Cond there is no
// associated lock: simulation code is single-threaded, so a fiber checks
// its predicate and calls Wait atomically with respect to all other
// simulated activity.
type Cond struct {
	name    string
	waiters []*Fiber
}

// NewCond creates a condition variable; name appears in deadlock reports.
func NewCond(name string) *Cond { return &Cond{name: name} }

// Wait parks the calling fiber until Signal or Broadcast wakes it. As with
// any condition variable, callers must re-check their predicate on wakeup.
func (c *Cond) Wait(f *Fiber) {
	c.waiters = append(c.waiters, f)
	f.Park("waiting on " + c.name)
}

// Signal wakes the longest-waiting fiber, if any, and reports whether one
// was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	first := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	first.Unpark()
	return true
}

// Broadcast wakes every waiting fiber (in wait order) and returns how many
// were woken.
func (c *Cond) Broadcast() int {
	n := len(c.waiters)
	for _, f := range c.waiters {
		f.Unpark()
	}
	c.waiters = c.waiters[:0]
	return n
}

// Waiters returns the number of fibers currently parked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
