package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Fatalf("final time = %v, want 3ms", e.Now())
	}
}

func TestScheduleTieBreakBySeq(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestScheduleAtPastClampsToNow(t *testing.T) {
	e := New(1)
	fired := false
	e.Schedule(time.Second, func() {
		e.ScheduleAt(0, func() {
			fired = true
			if e.Now() != Time(time.Second) {
				t.Errorf("past event ran at %v, want clamp to 1s", e.Now())
			}
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("clamped event never ran")
	}
}

func TestFiberSleepAdvancesClock(t *testing.T) {
	e := New(1)
	var wake Time
	e.Go("sleeper", func(f *Fiber) {
		f.Sleep(5 * time.Millisecond)
		wake = f.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
}

func TestFibersInterleaveDeterministically(t *testing.T) {
	run := func() string {
		e := New(42)
		var log []string
		for i := 0; i < 3; i++ {
			i := i
			e.Go(fmt.Sprintf("f%d", i), func(f *Fiber) {
				for j := 0; j < 3; j++ {
					log = append(log, fmt.Sprintf("f%d:%d@%v", i, j, f.Now()))
					f.Sleep(time.Duration(i+1) * time.Millisecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ",")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%s\n%s", a, b)
	}
}

func TestParkUnpark(t *testing.T) {
	e := New(1)
	var waiter *Fiber
	done := false
	e.Go("waiter", func(f *Fiber) {
		waiter = f
		f.Park("test")
		done = true
	})
	e.Go("waker", func(f *Fiber) {
		f.Sleep(time.Millisecond)
		waiter.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("parked fiber never resumed")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	e.Go("stuck", func(f *Fiber) { f.Park("forever") })
	err := e.Run()
	if err == nil {
		t.Fatal("want deadlock error, got nil")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "forever") {
		t.Fatalf("deadlock report missing fiber identity: %v", err)
	}
}

func TestFiberPanicPropagates(t *testing.T) {
	e := New(1)
	e.Go("bomb", func(f *Fiber) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fiber panic did not propagate to Run")
		}
		if !strings.Contains(fmt.Sprint(r), "bomb") {
			t.Fatalf("panic lost fiber identity: %v", r)
		}
	}()
	_ = e.Run()
}

func TestFiberOnExitRunsInReverseOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.Go("f", func(f *Fiber) {
		f.OnExit(func() { got = append(got, 1) })
		f.OnExit(func() { got = append(got, 2) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("OnExit order = %v, want [2 1]", got)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New(1)
	cpu := NewResource(e, "cpu", 1)
	var order []string
	hold := func(name string, start, dur time.Duration) {
		e.Go(name, func(f *Fiber) {
			f.Sleep(start)
			cpu.Acquire(f)
			order = append(order, name)
			f.Sleep(dur)
			cpu.Release()
		})
	}
	hold("a", 0, 10*time.Millisecond)
	hold("b", 1*time.Millisecond, 10*time.Millisecond)
	hold("c", 2*time.Millisecond, 10*time.Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a,b,c"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("acquisition order %q, want %q", got, want)
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Fatalf("serialized holds should end at 30ms, got %v", e.Now())
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 2)
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("f%d", i), func(f *Fiber) {
			r.Acquire(f)
			f.Sleep(10 * time.Millisecond)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(10*time.Millisecond) {
		t.Fatalf("parallel holds should end at 10ms, got %v", e.Now())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 1)
	e.Go("f", func(f *Fiber) {
		if !r.TryAcquire() {
			t.Error("TryAcquire on free resource failed")
		}
		if r.TryAcquire() {
			t.Error("TryAcquire on busy resource succeeded")
		}
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceUtilization(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 1)
	e.Go("f", func(f *Fiber) {
		r.Acquire(f)
		f.Sleep(time.Second)
		r.Release()
		f.Sleep(time.Second)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if b := r.BusyTime(); b != time.Second {
		t.Fatalf("busy time = %v, want 1s", b)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := New(1)
	c := NewCond("c")
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(f *Fiber) {
			c.Wait(f)
			woken++
		})
	}
	e.Go("signaler", func(f *Fiber) {
		f.Sleep(time.Millisecond)
		if !c.Signal() {
			t.Error("Signal with waiters returned false")
		}
		f.Sleep(time.Millisecond)
		if woken != 1 {
			t.Errorf("after one Signal, woken = %d, want 1", woken)
		}
		if n := c.Broadcast(); n != 2 {
			t.Errorf("Broadcast woke %d, want 2", n)
		}
	})
	err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestCondSignalEmpty(t *testing.T) {
	c := NewCond("c")
	if c.Signal() {
		t.Fatal("Signal on empty cond returned true")
	}
	if n := c.Broadcast(); n != 0 {
		t.Fatalf("Broadcast on empty cond woke %d", n)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New(1)
	q := NewQueue[int]("q")
	var got []int
	e.Go("producer", func(f *Fiber) {
		for i := 0; i < 5; i++ {
			q.Put(i)
			f.Sleep(time.Millisecond)
		}
	})
	e.Go("consumer", func(f *Fiber) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(f))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("queue order = %v", got)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	q := NewQueue[string]("q")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put("x")
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
}

func TestQueueBlockingGetWakes(t *testing.T) {
	e := New(1)
	q := NewQueue[int]("q")
	var got int
	var at Time
	e.Go("consumer", func(f *Fiber) {
		got = q.Get(f)
		at = f.Now()
	})
	e.Go("producer", func(f *Fiber) {
		f.Sleep(7 * time.Millisecond)
		q.Put(99)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 || at != Time(7*time.Millisecond) {
		t.Fatalf("got %d at %v, want 99 at 7ms", got, at)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(time.Second, func() { ran++ })
	e.Schedule(3*time.Second, func() { ran++ })
	if err := e.RunUntil(Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d before horizon, want 1", ran)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d after full run, want 2", ran)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++; e.Stop() })
	e.Schedule(2*time.Millisecond, func() { ran++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("Stop did not halt the run: ran = %d", ran)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed engines produced different random streams")
		}
	}
}

// Property: events scheduled with arbitrary delays always execute in
// nondecreasing time order.
func TestPropertyEventOrdering(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New(1)
		var times []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, e.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-1 resource never overlaps two holders, whatever
// the arrival pattern.
func TestPropertyResourceMutualExclusion(t *testing.T) {
	prop := func(starts []uint8) bool {
		e := New(1)
		r := NewResource(e, "r", 1)
		holders := 0
		ok := true
		for i, s := range starts {
			s := time.Duration(s) * time.Microsecond
			e.Go(fmt.Sprintf("f%d", i), func(f *Fiber) {
				f.Sleep(s)
				r.Acquire(f)
				holders++
				if holders > 1 {
					ok = false
				}
				f.Sleep(10 * time.Microsecond)
				holders--
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue preserves FIFO order for any input sequence.
func TestPropertyQueueFIFO(t *testing.T) {
	prop := func(vals []int64) bool {
		e := New(1)
		q := NewQueue[int64]("q")
		var got []int64
		e.Go("c", func(f *Fiber) {
			for range vals {
				got = append(got, q.Get(f))
			}
		})
		e.Go("p", func(f *Fiber) {
			for _, v := range vals {
				q.Put(v)
				f.Sleep(time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCounters(t *testing.T) {
	e := New(1)
	e.Go("f", func(f *Fiber) { f.Sleep(time.Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Events() == 0 {
		t.Fatal("event counter did not advance")
	}
	if e.Switches() < 2 {
		t.Fatalf("switch counter = %d, want >= 2", e.Switches())
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatalf("Sub = %v", tm.Sub(Time(time.Second)))
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String = %q", tm.String())
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := New(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFiberSwitch(b *testing.B) {
	e := New(1)
	e.Go("bench", func(f *Fiber) {
		for i := 0; i < b.N; i++ {
			f.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
