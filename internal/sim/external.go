package sim

// External feeds work into a running engine from outside the simulated
// world — the bridge a real-network transport backend uses to hand
// received frames (and link-state changes) to the engine without
// breaking the single-token execution model. The engine remains the
// only executor: injected callbacks run in engine context, in the order
// the source hands them over, exactly like any other event.
//
// An External also supplies the engine's notion of "host-paced" virtual
// time. In a pure simulation the clock jumps instantly from event to
// event; over a real network that would fire the protocol's liveness
// timers (retransmission, give-up, down-hint TTLs) long before real
// replies could possibly arrive. With a source installed, the engine
// paces the virtual clock against the source's Now mapping: an event
// scheduled at virtual time T does not execute until Now() >= T, and
// the engine parks in Wait — instead of declaring the run drained —
// whenever the queue is momentarily empty but fibers are still live.
//
// Implementations live in host components (internal/tcpnet); their
// methods carry //ivy:hostworld and are the sanctioned crossing point
// between the two worlds. The engine side of the bridge performs no
// host operation itself — it only calls through this interface.
type External interface {
	// Drain hands over every callback injected since the last call, in
	// injection order, by calling apply for each. It must not block.
	// Called in engine context at the top of every dispatch step.
	Drain(apply func(fn func()))

	// Now returns the current virtual time as derived from the host
	// clock (typically scaled wall time plus a small slack that lets
	// fine-grained event bursts run unpaced). It must be monotonic.
	Now() Time

	// Wait blocks the dispatching goroutine until Now() reaches until,
	// until new injected work arrives, or until the source is closed —
	// whichever comes first. Spurious early returns are harmless: the
	// engine re-checks and waits again. Implementations should bound a
	// single wait so a closed-over engine cannot sleep forever.
	Wait(until Time)
}

// SetExternal installs (or, with nil, removes) an external work source.
// Must be called before RunUntil. With a source installed the engine is
// no longer deterministic — injection timing depends on the host — so
// this is only used by real-transport backends, never by simulations.
func (e *Engine) SetExternal(src External) { e.ext = src }

// injectExternal schedules one injected callback at the host-paced
// current time (never before the engine's own clock). It is the apply
// function dispatch passes to External.Drain.
func (e *Engine) injectExternal(fn func()) {
	at := e.ext.Now()
	if at < e.now {
		at = e.now
	}
	e.scheduleFunc(at, fn)
}
