package ec

import (
	"testing"
	"time"

	"repro/internal/drace"
	"repro/internal/proc"
)

// newRaceRig is newRig with the happens-before race detector armed on
// every SVM and the process layer (TLBs off, so every access reaches a
// hooked checked path — the same wiring Config.DRace performs).
func newRaceRig(t *testing.T, n int) (*rig, *drace.Detector) {
	t.Helper()
	r := newRig(t, n, 1)
	d := drace.New(r.svms[0].Base(), 1024, func() time.Duration { return r.eng.Now().Duration() })
	for _, s := range r.svms {
		s.SetRaceDetector(d)
	}
	r.cluster.SetDisableTLB(true)
	r.cluster.SetRaceDetector(d)
	return r, d
}

// TestEventcountHappensBefore pins the hb semantics of the eventcount
// primitives, table-driven: which operation pairs create edges (no
// report on data they order) and which deliberately do not.
func TestEventcountHappensBefore(t *testing.T) {
	cases := []struct {
		name string
		// body wires the scenario onto a fresh 3-node rig; data accesses
		// use words at base+512 (same page as the eventcount at base).
		body      func(r *rig)
		wantRaces bool
	}{
		{
			// Sanity: with no program synchronization at all, the
			// detector must report — virtual-time ordering is exactly
			// what does NOT count.
			name: "unsynchronized write then read reports",
			body: func(r *rig) {
				base := r.svms[0].Base()
				data := base + 512
				r.cluster.Node(0).Create(func(p *proc.Process) {
					p.Node().SVM().WriteU64(p, data, 1)
				}, proc.CreateOpts{Name: "w"})
				r.cluster.Node(1).Create(func(p *proc.Process) {
					p.Fiber().Sleep(100 * time.Millisecond)
					p.Node().SVM().ReadU64(p, data)
				}, proc.CreateOpts{Name: "r"})
			},
			wantRaces: true,
		},
		{
			// Advance -> Wait is the fundamental edge: everything before
			// the Advance is ordered before everything after the Wait
			// that observes it.
			name: "advance then wait creates edge",
			body: func(r *rig) {
				base := r.svms[0].Base()
				data := base + 512
				r.cluster.Node(0).Create(func(p *proc.Process) {
					e := Init(p, base, 8)
					e.Wait(p, 1)
					p.Node().SVM().ReadU64(p, data) // ordered: no report
				}, proc.CreateOpts{Name: "waiter"})
				r.cluster.Node(1).Create(func(p *proc.Process) {
					p.Fiber().Sleep(50 * time.Millisecond) // let Init run
					e := Attach(base, 8)
					p.Node().SVM().WriteU64(p, data, 7)
					e.Advance(p)
				}, proc.CreateOpts{Name: "advancer"})
			},
			wantRaces: false,
		},
		{
			// Advance -> Read: observing the advanced value through Read
			// is an acquire, same as Wait.
			name: "advance then read creates edge",
			body: func(r *rig) {
				base := r.svms[0].Base()
				data := base + 512
				r.cluster.Node(0).Create(func(p *proc.Process) {
					e := Init(p, base, 8)
					p.Node().SVM().WriteU64(p, data, 7)
					e.Advance(p)
				}, proc.CreateOpts{Name: "advancer"})
				r.cluster.Node(1).Create(func(p *proc.Process) {
					p.Fiber().Sleep(50 * time.Millisecond)
					e := Attach(base, 8)
					for e.Read(p) < 1 {
						p.Fiber().Sleep(10 * time.Millisecond)
					}
					p.Node().SVM().ReadU64(p, data) // ordered: no report
				}, proc.CreateOpts{Name: "reader"})
			},
			wantRaces: false,
		},
		{
			// Two Reads create no reader-reader edge: both readers are
			// ordered after the advancer, but not with each other, so a
			// write one reader makes is unordered with the other's read.
			name: "two reads create no edge between readers",
			body: func(r *rig) {
				base := r.svms[0].Base()
				d1, d2 := base+512, base+520
				r.cluster.Node(0).Create(func(p *proc.Process) {
					e := Init(p, base, 8)
					p.Node().SVM().WriteU64(p, d1, 1)
					e.Advance(p)
				}, proc.CreateOpts{Name: "advancer"})
				r.cluster.Node(1).Create(func(p *proc.Process) {
					p.Fiber().Sleep(50 * time.Millisecond)
					e := Attach(base, 8)
					for e.Read(p) < 1 {
						p.Fiber().Sleep(10 * time.Millisecond)
					}
					p.Node().SVM().ReadU64(p, d1)    // ordered by the acquire
					p.Node().SVM().WriteU64(p, d2, 7) // not published anywhere
				}, proc.CreateOpts{Name: "r1"})
				r.cluster.Node(2).Create(func(p *proc.Process) {
					p.Fiber().Sleep(400 * time.Millisecond) // after r1's write
					e := Attach(base, 8)
					for e.Read(p) < 1 {
						p.Fiber().Sleep(10 * time.Millisecond)
					}
					p.Node().SVM().ReadU64(p, d2) // unordered with r1's write
				}, proc.CreateOpts{Name: "r2"})
			},
			wantRaces: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r, d := newRaceRig(t, 3)
			tc.body(r)
			r.run(t, time.Minute)
			got := d.Reports()
			if tc.wantRaces && len(got) == 0 {
				t.Fatal("expected race reports, got none")
			}
			if !tc.wantRaces && len(got) != 0 {
				t.Fatalf("expected no reports, got %d: %v", len(got), got)
			}
		})
	}
}

// TestSequencerTicketsTotallyOrderHolders: the ticket-then-wait mutual
// exclusion idiom (Reed & Kanodia) gives each ticket holder exclusive,
// totally ordered access — a shared read-modify-write cell under it must
// produce no reports and no lost updates.
func TestSequencerTicketsTotallyOrderHolders(t *testing.T) {
	const workers = 3
	r, d := newRaceRig(t, workers)
	base := r.svms[0].Base()
	seqAddr := base
	ecAddr := base + uint64(SequencerSize())
	cell := base + 512

	r.cluster.Node(0).Create(func(p *proc.Process) {
		InitSequencer(p, seqAddr)
		Init(p, ecAddr, workers+1)
		p.Node().SVM().WriteU64(p, cell, 0)
		for i := 0; i < workers; i++ {
			r.cluster.Node(i).Create(func(q *proc.Process) {
				s := q.Node().SVM()
				sq := AttachSequencer(seqAddr)
				e := Attach(ecAddr, workers+1)
				tk := sq.Ticket(q)
				e.Wait(q, tk) // our turn: everyone with a smaller ticket is done
				s.WriteU64(q, cell, s.ReadU64(q, cell)+1)
				e.Advance(q)
			}, proc.CreateOpts{Name: "holder"})
		}
	}, proc.CreateOpts{Name: "setup"})
	r.run(t, time.Minute)

	if got := d.Reports(); len(got) != 0 {
		t.Fatalf("sequencer-ordered holders reported races: %v", got)
	}
	// The cell's final value proves no update was lost.
	var final uint64
	r.cluster.Node(0).Create(func(p *proc.Process) {
		final = p.Node().SVM().ReadU64(p, cell)
	}, proc.CreateOpts{Name: "check"})
	r.run(t, time.Minute)
	if final != workers {
		t.Fatalf("cell = %d after %d exclusive increments", final, workers)
	}
}
