// Package ec implements eventcounts — IVY's process synchronization
// mechanism, chosen because the underlying Aegis system used them — on
// top of the shared virtual memory itself. An eventcount's data (value,
// waiter list) lives in shared pages: the primitives are ordinary memory
// operations plus test-and-set, so once the page has migrated to a node,
// further operations there are local, exactly the locality argument the
// paper makes. Waiters suspended on other nodes are woken with the
// remote notification operation.
//
// Memory layout of an eventcount at address a (little-endian):
//
//	a+0:  lock byte (test-and-set)
//	a+8:  value (int64)
//	a+16: waiter count (uint32)
//	a+20: capacity (uint32)
//	a+24: waiter records, 24 bytes each: handle u64, target i64, node u16
//
// The whole structure usually fits one page ("in most cases, only one
// page is needed for each eventcount"); larger capacities simply span
// contiguous pages.
package ec

import (
	"fmt"
	"time"

	"repro/internal/proc"
	"repro/internal/ring"
)

const (
	offLock     = 0
	offValue    = 8
	offNWaiters = 16
	offCap      = 20
	offWaiters  = 24
	waiterSize  = 24
)

// SizeFor returns the bytes an eventcount with the given waiter capacity
// occupies in shared memory.
func SizeFor(capacity int) int { return offWaiters + waiterSize*capacity }

// EC is a handle to an eventcount in shared memory. Handles are cheap
// and local; any process on any node may operate on the same address.
type EC struct {
	addr uint64
	cap  int
}

// Init initializes the eventcount at addr with the given waiter
// capacity, which must match the space the caller allocated (SizeFor).
func Init(p *proc.Process, addr uint64, capacity int) *EC {
	if capacity <= 0 {
		panic("ec: capacity must be positive")
	}
	s := p.Node().SVM()
	// The lock byte and value are synchronization state: the race
	// detector consumes their ordering (test-and-set edges, advance/wait
	// edges) rather than checking them. Mark before the zeroing writes so
	// they never enter the data shadow. The waiter table is ordinary data
	// protected by the lock, so it stays checked.
	s.RaceMarkSync(addr+offLock, 1)
	s.RaceMarkSync(addr+offValue, 8)
	zero := make([]byte, SizeFor(capacity))
	s.WriteBytes(p, addr, zero)
	s.WriteU32(p, addr+offCap, uint32(capacity))
	return &EC{addr: addr, cap: capacity}
}

// Attach returns a handle to an eventcount initialized elsewhere.
func Attach(addr uint64, capacity int) *EC { return &EC{addr: addr, cap: capacity} }

// Addr returns the eventcount's shared address.
func (e *EC) Addr() uint64 { return e.addr }

// lock acquires the test-and-set byte — the paper's "pinning memory
// pages and using test-and-set instructions". The acquire loop tests
// with a plain read before attempting test-and-set: a read shares the
// page while a test-and-set steals it exclusively, so spinning directly
// on test-and-set would bounce the eventcount's page between nodes on
// every probe. Exponential backoff keeps remote contention below the
// page-transfer cost.
func (e *EC) lock(p *proc.Process) {
	s := p.Node().SVM()
	backoff := 200 * time.Microsecond
	for {
		if s.ReadU8(p, e.addr+offLock) == 0 && s.TestAndSetLatch(p, e.addr+offLock) {
			return
		}
		p.Flush()
		p.Fiber().Sleep(backoff)
		if backoff < 8*time.Millisecond {
			backoff *= 2
		}
	}
}

func (e *EC) unlock(p *proc.Process) {
	// ClearLatch, not Clear: the eventcount's RC release/acquire points
	// are explicit (Advance releases, Read/Wait acquire); the latch
	// itself guards only sync-arena state.
	p.Node().SVM().ClearLatch(p, e.addr+offLock)
}

// Read returns the eventcount's current value.
//
// Happens-before: a Read acquires the edges published by every Advance
// so far — advancing happens-before observing the advanced value. Two
// Reads create no edge with each other (readers do not publish).
func (e *EC) Read(p *proc.Process) int64 {
	s := p.Node().SVM()
	v := s.ReadI64(p, e.addr+offValue)
	s.RaceAcquire(p, e.addr+offValue)
	// Under release consistency an observed Advance also obliges this
	// node to drop cached data pages the advancer's release published.
	s.RCAcquire(p)
	return v
}

// Wait suspends the calling process until the eventcount reaches target.
func (e *EC) Wait(p *proc.Process, target int64) {
	s := p.Node().SVM()
	// Lock-free fast path: the value is monotonic, so a stale read can
	// only under-report; a satisfied read is definitive.
	if s.ReadI64(p, e.addr+offValue) >= target {
		// Advance happens-before the Wait that observes it.
		s.RaceAcquire(p, e.addr+offValue)
		s.RCAcquire(p)
		return
	}
	for {
		e.lock(p)
		v := s.ReadI64(p, e.addr+offValue)
		if v >= target {
			s.RaceAcquire(p, e.addr+offValue)
			e.unlock(p)
			// The RC acquire happens after the latch drops: it must
			// complete before THIS process touches data pages again, but
			// running its directory round-trip inside the hold window
			// would serialize every other node's barrier entry behind it.
			s.RCAcquire(p)
			return
		}
		n := int(s.ReadU32(p, e.addr+offNWaiters))
		if n >= e.cap {
			e.unlock(p)
			panic(fmt.Sprintf("ec: waiter table full (%d) at %#x", e.cap, e.addr))
		}
		rec := e.addr + offWaiters + uint64(n*waiterSize)
		s.WriteU64(p, rec, p.Handle())
		s.WriteI64(p, rec+8, target)
		s.WriteU32(p, rec+16, uint32(p.Node().ID()))
		s.WriteU32(p, e.addr+offNWaiters, uint32(n+1))
		e.unlock(p)
		p.Suspend(fmt.Sprintf("ec wait %#x for %d", e.addr, target))
		// Re-check: Advance removed our record before waking us, but a
		// raced token wake must loop.
	}
}

// Advance increments the eventcount and wakes every waiter whose target
// has been reached, locally or via remote notification. It returns the
// new value.
func (e *EC) Advance(p *proc.Process) int64 {
	s := p.Node().SVM()
	// Under release consistency the advance is a release: buffered writes
	// must be committed and their notices posted before the new value is
	// stored — a waiter's lock-free fast path can observe it the instant
	// the write lands, with no TAS between to release at. Running the
	// release BEFORE taking the latch keeps the (multi-round-trip) diff
	// and notice traffic out of the hold window: between here and the
	// store the advancer touches only sync-arena state, so no new data
	// twins can appear.
	s.RCRelease(p)
	e.lock(p)
	v := s.ReadI64(p, e.addr+offValue) + 1
	s.WriteI64(p, e.addr+offValue, v)
	// The advancer's history happens-before every later Wait/Read that
	// observes the new value; vc also rides the waiter notifications so
	// the edge reaches waiters that skip the re-read.
	s.RaceRelease(p, e.addr+offValue)
	vc := s.RaceVC(p)
	n := int(s.ReadU32(p, e.addr+offNWaiters))
	i := 0
	for i < n {
		rec := e.addr + offWaiters + uint64(i*waiterSize)
		target := s.ReadI64(p, rec+8)
		if target > v {
			i++
			continue
		}
		handle := s.ReadU64(p, rec)
		nodeID := ring.NodeID(s.ReadU32(p, rec+16))
		// Remove by swapping the last record down.
		last := e.addr + offWaiters + uint64((n-1)*waiterSize)
		if last != rec {
			s.WriteU64(p, rec, s.ReadU64(p, last))
			s.WriteI64(p, rec+8, s.ReadI64(p, last+8))
			s.WriteU32(p, rec+16, s.ReadU32(p, last+16))
		}
		n--
		p.Node().NotifyWaiter(proc.PID{Node: nodeID, PCB: handle}, e.addr, v, vc)
	}
	s.WriteU32(p, e.addr+offNWaiters, uint32(n))
	e.unlock(p)
	return v
}

// AwaitValue is a convenience loop for harness code: wait until the
// count reaches target, tolerating spurious wakeups.
func (e *EC) AwaitValue(p *proc.Process, target int64) {
	for e.Read(p) < target {
		e.Wait(p, target)
	}
}

// --- Sequencer -----------------------------------------------------------
//
// Reed & Kanodia's synchronization mechanism — the one IVY's eventcounts
// come from — pairs eventcounts with *sequencers*: a Ticket operation
// that returns strictly increasing integers. A sequencer plus an
// eventcount gives totally-ordered mutual exclusion (take a ticket,
// await the eventcount reaching it, do the work, advance). Like the
// eventcount, the sequencer lives in shared memory and is local once its
// page has migrated.

const seqSize = 16 // lock byte + value

// Sequencer hands out strictly increasing tickets.
type Sequencer struct {
	addr uint64
}

// SequencerSize returns the shared bytes a sequencer occupies.
func SequencerSize() int { return seqSize }

// InitSequencer initializes a sequencer at addr.
func InitSequencer(p *proc.Process, addr uint64) *Sequencer {
	s := p.Node().SVM()
	// Only the lock byte is synchronization state; the ticket value at
	// addr+8 is ordinary data whose accesses the test-and-set edges keep
	// totally ordered, so it stays race-checked.
	s.RaceMarkSync(addr, 1)
	s.WriteU8(p, addr, 0)
	s.WriteI64(p, addr+8, 0)
	return &Sequencer{addr: addr}
}

// AttachSequencer returns a handle to a sequencer initialized elsewhere.
func AttachSequencer(addr uint64) *Sequencer { return &Sequencer{addr: addr} }

// Addr returns the sequencer's shared address.
func (sq *Sequencer) Addr() uint64 { return sq.addr }

// Ticket returns the next value (0, 1, 2, …). Concurrent callers on any
// nodes receive distinct values.
func (sq *Sequencer) Ticket(p *proc.Process) int64 {
	s := p.Node().SVM()
	backoff := 200 * time.Microsecond
	for {
		if s.ReadU8(p, sq.addr) == 0 && s.TestAndSet(p, sq.addr) {
			break
		}
		p.Flush()
		p.Fiber().Sleep(backoff)
		if backoff < 8*time.Millisecond {
			backoff *= 2
		}
	}
	t := s.ReadI64(p, sq.addr+8)
	s.WriteI64(p, sq.addr+8, t+1)
	s.Clear(p, sq.addr)
	return t
}
