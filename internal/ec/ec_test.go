package ec

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proc"
	"repro/internal/remop"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

type rig struct {
	eng     *sim.Engine
	svms    []*core.SVM
	cluster *proc.Cluster
}

func newRig(t *testing.T, n int, seed int64) *rig {
	t.Helper()
	eng := sim.New(seed)
	costs := model.Default1988()
	nw := ring.New(eng, costs, n)
	r := &rig{eng: eng}
	for i := 0; i < n; i++ {
		cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", i), 1)
		ep := remop.NewEndpoint(eng, nw, ring.NodeID(i), cpu, costs, nil)
		cfg := core.Config{
			Node:         ring.NodeID(i),
			PageSize:     1024,
			NumPages:     32,
			DefaultOwner: 0,
			Algorithm:    core.DynamicDistributed,
			Costs:        costs,
		}
		r.svms = append(r.svms, core.New(eng, ep, cpu, cfg, &stats.Node{}))
	}
	r.cluster = proc.NewCluster(eng, r.svms, proc.BalanceConfig{Interval: 100 * time.Millisecond})
	return r
}

func (r *rig) run(t *testing.T, horizon time.Duration) {
	t.Helper()
	if err := r.eng.RunUntil(r.eng.Now().Add(horizon)); err != nil {
		t.Fatal(err)
	}
}

func TestInitReadAdvance(t *testing.T) {
	r := newRig(t, 1, 1)
	addr := r.svms[0].Base()
	r.cluster.Node(0).Create(func(p *proc.Process) {
		e := Init(p, addr, 8)
		if v := e.Read(p); v != 0 {
			t.Errorf("initial value = %d", v)
		}
		if v := e.Advance(p); v != 1 {
			t.Errorf("Advance returned %d", v)
		}
		if v := e.Read(p); v != 1 {
			t.Errorf("value after advance = %d", v)
		}
	}, proc.CreateOpts{Name: "t"})
	r.run(t, time.Minute)
}

func TestWaitBlocksUntilValue(t *testing.T) {
	// Waiter and advancer on different nodes so both make progress (a
	// sleeping process holds its node in the cooperative scheduler).
	r := newRig(t, 2, 1)
	addr := r.svms[0].Base()
	var wokeAt sim.Time
	var order []string
	r.cluster.Node(0).Create(func(p *proc.Process) {
		Init(p, addr, 8)
		w := Attach(addr, 8)
		order = append(order, "waiting")
		w.Wait(p, 2)
		order = append(order, "woke")
		wokeAt = p.Fiber().Now()
	}, proc.CreateOpts{Name: "waiter"})
	r.cluster.Node(1).Create(func(q *proc.Process) {
		a := Attach(addr, 8)
		q.Fiber().Sleep(100 * time.Millisecond)
		order = append(order, "adv1")
		a.Advance(q)
		q.Fiber().Sleep(100 * time.Millisecond)
		order = append(order, "adv2")
		a.Advance(q)
	}, proc.CreateOpts{Name: "advancer"})
	r.run(t, time.Minute)
	want := "[waiting adv1 adv2 woke]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if wokeAt < sim.Time(200*time.Millisecond) {
		t.Fatalf("woke at %v, before the second advance", wokeAt)
	}
}

func TestWaitSatisfiedImmediately(t *testing.T) {
	r := newRig(t, 1, 1)
	addr := r.svms[0].Base()
	done := false
	r.cluster.Node(0).Create(func(p *proc.Process) {
		e := Init(p, addr, 8)
		e.Advance(p)
		e.Wait(p, 1) // already reached: returns without suspending
		done = true
	}, proc.CreateOpts{Name: "t"})
	r.run(t, time.Minute)
	if !done {
		t.Fatal("Wait on a reached value blocked")
	}
}

func TestCrossNodeWakeup(t *testing.T) {
	// The waiter suspends on node 1; Advance runs on node 0 and must
	// deliver a remote notification.
	r := newRig(t, 2, 1)
	addr := r.svms[0].Base()
	woke := false
	r.cluster.Node(0).Create(func(p *proc.Process) {
		Init(p, addr, 8)
	}, proc.CreateOpts{Name: "init"})
	r.cluster.Node(1).Create(func(p *proc.Process) {
		p.Fiber().Sleep(100 * time.Millisecond) // after init
		w := Attach(addr, 8)
		w.Wait(p, 1)
		woke = true
		if p.Node().ID() != 1 {
			t.Error("waiter woke on the wrong node")
		}
	}, proc.CreateOpts{Name: "waiter"})
	r.cluster.Node(0).Create(func(p *proc.Process) {
		p.Fiber().Sleep(time.Second)
		Attach(addr, 8).Advance(p)
	}, proc.CreateOpts{Name: "advancer"})
	r.run(t, time.Minute)
	if !woke {
		t.Fatal("cross-node wakeup lost")
	}
}

func TestBarrierAcrossNodes(t *testing.T) {
	// The linear-solver pattern: N processes on N nodes synchronize at
	// each of several iterations through one eventcount.
	const nodes = 4
	const iters = 5
	r := newRig(t, nodes, 1)
	addr := r.svms[0].Base()
	finished := 0
	r.cluster.Node(0).Create(func(p *proc.Process) {
		Init(p, addr, 64)
		for i := 0; i < nodes; i++ {
			i := i
			r.cluster.Node(i).Create(func(q *proc.Process) {
				e := Attach(addr, 64)
				for it := 1; it <= iters; it++ {
					q.Compute(10 * time.Millisecond) // simulated work
					e.Advance(q)
					e.AwaitValue(q, int64(it*nodes))
				}
				finished++
			}, proc.CreateOpts{Name: fmt.Sprintf("worker%d", i)})
		}
	}, proc.CreateOpts{Name: "main"})
	r.run(t, time.Hour)
	if finished != nodes {
		t.Fatalf("%d/%d workers passed all barriers", finished, nodes)
	}
}

func TestManyWaitersAllWake(t *testing.T) {
	r := newRig(t, 1, 1)
	addr := r.svms[0].Base()
	woke := 0
	r.cluster.Node(0).Create(func(p *proc.Process) {
		Init(p, addr, 16)
		n := p.Node()
		for i := 0; i < 10; i++ {
			n.Create(func(q *proc.Process) {
				Attach(addr, 16).Wait(q, 1)
				woke++
			}, proc.CreateOpts{Name: fmt.Sprintf("w%d", i)})
		}
		n.Create(func(q *proc.Process) {
			q.Fiber().Sleep(50 * time.Millisecond)
			Attach(addr, 16).Advance(q)
		}, proc.CreateOpts{Name: "adv"})
	}, proc.CreateOpts{Name: "setup"})
	r.run(t, time.Minute)
	if woke != 10 {
		t.Fatalf("%d/10 waiters woke", woke)
	}
}

func TestDifferentTargetsWakeSelectively(t *testing.T) {
	// Waiters on node 0 suspend (each Wait yields to the next), the
	// advancer on node 1 releases them one target at a time.
	r := newRig(t, 2, 1)
	addr := r.svms[0].Base()
	var woke []int
	r.cluster.Node(0).Create(func(p *proc.Process) {
		Init(p, addr, 16)
		n := p.Node()
		for _, target := range []int{1, 2, 3} {
			target := target
			n.Create(func(q *proc.Process) {
				Attach(addr, 16).Wait(q, int64(target))
				woke = append(woke, target)
			}, proc.CreateOpts{Name: fmt.Sprintf("w%d", target)})
		}
	}, proc.CreateOpts{Name: "setup"})
	r.cluster.Node(1).Create(func(q *proc.Process) {
		a := Attach(addr, 16)
		for i := 0; i < 3; i++ {
			q.Fiber().Sleep(200 * time.Millisecond)
			a.Advance(q)
		}
	}, proc.CreateOpts{Name: "adv"})
	r.run(t, time.Minute)
	if fmt.Sprint(woke) != "[1 2 3]" {
		t.Fatalf("wake order by target = %v", woke)
	}
}

func TestECPageMigratesToAdvancingNode(t *testing.T) {
	// The paper's locality argument: after node 1 advances, the
	// eventcount page lives there and further operations are local.
	r := newRig(t, 2, 1)
	addr := r.svms[0].Base()
	r.cluster.Node(0).Create(func(p *proc.Process) {
		Init(p, addr, 8)
	}, proc.CreateOpts{Name: "init"})
	r.cluster.Node(1).Create(func(p *proc.Process) {
		p.Fiber().Sleep(time.Second)
		Attach(addr, 8).Advance(p)
	}, proc.CreateOpts{Name: "adv"})
	r.run(t, time.Minute)
	pg := r.svms[1].PageOf(addr)
	if !r.svms[1].Table().Entry(pg).IsOwner {
		t.Fatal("eventcount page did not migrate to the advancing node")
	}
}

func TestWaiterOverflowPanics(t *testing.T) {
	r := newRig(t, 1, 1)
	addr := r.svms[0].Base()
	r.cluster.Node(0).Create(func(p *proc.Process) {
		e := Init(p, addr, 1)
		n := p.Node()
		for i := 0; i < 2; i++ {
			n.Create(func(q *proc.Process) {
				e.Wait(q, 5)
			}, proc.CreateOpts{Name: fmt.Sprintf("w%d", i)})
		}
	}, proc.CreateOpts{Name: "setup"})
	defer func() {
		if recover() == nil {
			t.Fatal("waiter overflow did not panic")
		}
	}()
	_ = r.eng.RunUntil(sim.Time(time.Minute))
}

func TestSizeFor(t *testing.T) {
	if SizeFor(1) != 48 {
		t.Fatalf("SizeFor(1) = %d", SizeFor(1))
	}
	if SizeFor(10) != 24+240 {
		t.Fatalf("SizeFor(10) = %d", SizeFor(10))
	}
}

func TestSequencerTicketsAreUniqueAndOrdered(t *testing.T) {
	r := newRig(t, 3, 1)
	addr := r.svms[0].Base()
	var tickets []int64
	r.cluster.Node(0).Create(func(p *proc.Process) {
		InitSequencer(p, addr)
		done := 0
		for i := 0; i < 3; i++ {
			i := i
			r.cluster.Node(i).Create(func(q *proc.Process) {
				sq := AttachSequencer(addr)
				for k := 0; k < 5; k++ {
					tickets = append(tickets, sq.Ticket(q))
				}
				done++
			}, proc.CreateOpts{Name: fmt.Sprintf("t%d", i)})
		}
		_ = done
	}, proc.CreateOpts{Name: "setup"})
	r.run(t, time.Hour)
	if len(tickets) != 15 {
		t.Fatalf("%d tickets", len(tickets))
	}
	seen := map[int64]bool{}
	for _, tk := range tickets {
		if seen[tk] {
			t.Fatalf("duplicate ticket %d", tk)
		}
		seen[tk] = true
	}
	for v := int64(0); v < 15; v++ {
		if !seen[v] {
			t.Fatalf("ticket %d missing", v)
		}
	}
}

func TestSequencerWithEventcountGivesOrderedCriticalSections(t *testing.T) {
	// The Reed-Kanodia mutual exclusion idiom: ticket, await, work,
	// advance. Entry order must equal ticket order, exactly once each.
	r := newRig(t, 3, 1)
	seqAddr := r.svms[0].Base()
	ecAddr := seqAddr + 1024
	var order []int64
	r.cluster.Node(0).Create(func(p *proc.Process) {
		InitSequencer(p, seqAddr)
		Init(p, ecAddr, 16)
		for i := 0; i < 3; i++ {
			i := i
			r.cluster.Node(i).Create(func(q *proc.Process) {
				sq := AttachSequencer(seqAddr)
				e := Attach(ecAddr, 16)
				for k := 0; k < 3; k++ {
					tk := sq.Ticket(q)
					e.AwaitValue(q, tk)
					order = append(order, tk) // critical section
					q.Compute(time.Millisecond)
					e.Advance(q)
				}
			}, proc.CreateOpts{Name: fmt.Sprintf("w%d", i)})
		}
	}, proc.CreateOpts{Name: "setup"})
	r.run(t, time.Hour)
	if len(order) != 9 {
		t.Fatalf("%d entries", len(order))
	}
	for i, tk := range order {
		if tk != int64(i) {
			t.Fatalf("entry order %v not ticket order", order)
		}
	}
}
