package proc

import (
	"repro/internal/remop"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/wire"
)

// installHandlers registers the node's process-management request
// handlers on its endpoint.
func (n *Node) installHandlers() {
	n.ep.SetHandler(wire.KindMigrateReq, n.handleMigrate)
	n.ep.SetHandler(wire.KindWorkReq, n.handleWork)
	n.ep.SetHandler(wire.KindResumeReq, n.handleResume)
	n.ep.SetHandler(wire.KindNotifyReq, n.handleNotify)
	n.ep.SetHandler(wire.KindPCBProbe, n.handlePCBProbe)
}

// handleWork answers an idle node's request for work: grant by migrating
// the oldest migratable ready process when this node's process count
// exceeds the high threshold. The same kind arrives as a no-reply
// broadcast carrying a load hint, which needs no action beyond the
// hint recording the endpoint already did.
func (n *Node) handleWork(ctx *remop.Ctx, env *wire.Envelope) wire.Msg {
	if !env.IsRequest() {
		return nil // load-hint broadcast
	}
	if n.stopped || n.counted <= n.bal.HighThreshold {
		return &wire.WorkReply{Granted: false}
	}
	p := n.pickMigratable()
	if p == nil {
		return &wire.WorkReply{Granted: false}
	}
	ok := n.MigrateOut(ctx.Fiber(), p, ring.NodeID(env.Origin))
	return &wire.WorkReply{Granted: ok}
}

// handleResume services a remote resume operation, chasing forwarding
// pointers left by migrations with the forwarding mechanism.
func (n *Node) handleResume(ctx *remop.Ctx, env *wire.Envelope) wire.Msg {
	m := env.Body.(*wire.ResumeReq)
	if sl := n.pcbs[m.PCBAddr]; sl != nil && sl.state == Migrated {
		ctx.Forward(sl.forward.Node)
		return nil
	}
	n.resumeLocal(m.PCBAddr)
	return &wire.ResumeReq{PCBAddr: m.PCBAddr} // echo ack
}

// handleNotify wakes an eventcount waiter whose Advance ran remotely.
// The piggybacked vector clock joins the waiter's thread before it runs
// again: the advancer's history happens-before the wakeup.
func (n *Node) handleNotify(ctx *remop.Ctx, env *wire.Envelope) wire.Msg {
	m := env.Body.(*wire.NotifyReq)
	if sl := n.pcbs[m.PCBAddr]; sl != nil && sl.state == Migrated {
		ctx.Forward(sl.forward.Node)
		return nil
	}
	if p := n.cluster.procs[m.PCBAddr]; p != nil {
		p.race.JoinVC(m.VC)
	}
	n.resumeLocal(m.PCBAddr)
	return &wire.NotifyReq{PCBAddr: m.PCBAddr, ECAddr: m.ECAddr, Value: m.Value}
}

// NotifyWaiter wakes an eventcount waiter: locally through the ready
// queue, remotely through a reliable notify carrying the eventcount
// address and value. vc is the advancer's vector clock at the Advance
// (nil with drace off); it joins the waiter so the wakeup carries the
// happens-before edge even when the waiter skips the value re-read.
func (n *Node) NotifyWaiter(pid PID, ecAddr uint64, value int64, vc []uint64) {
	if pid.Node == n.id {
		if p := n.cluster.procs[pid.PCB]; p != nil {
			p.race.JoinVC(vc)
		}
		n.resumeLocal(pid.PCB)
		return
	}
	n.ep.NotifyReliable(pid.Node, &wire.NotifyReq{PCBAddr: pid.PCB, ECAddr: ecAddr, Value: value, VC: vc})
}

// --- Forwarding-pointer garbage collection ---------------------------------
//
// A migrated process leaves a forwarding pointer in its old PCB slot so
// remote resume and notify operations can chase it. The paper notes the
// collection of these non-reachable PCBs "has not been implemented in
// IVY"; here the null process probes one forwarded handle per idle
// timeout and reclaims the slot once the process has terminated (handles
// are never reused, so a reclaimed slot cannot be confused with a live
// one).

// collectOnce probes the oldest forwarding pointer awaiting collection.
func (n *Node) collectOnce(f *sim.Fiber) {
	for len(n.fwdQueue) > 0 {
		handle := n.fwdQueue[0]
		n.fwdQueue = n.fwdQueue[1:]
		sl := n.pcbs[handle]
		if sl == nil || sl.state != Migrated {
			continue // already collected or superseded
		}
		// Fail-fast: a probe is idempotent and the queue retries later, so
		// a crashed forwarding target should not pin the null process for
		// the whole outage.
		reply, err := n.ep.CallFailFast(f, sl.forward.Node, &wire.PCBProbe{Handle: handle})
		if err != nil {
			n.fwdQueue = append(n.fwdQueue, handle)
			return
		}
		if probe, ok := reply.(*wire.PCBProbe); ok && !probe.Live {
			delete(n.pcbs, handle)
			n.collected++
			return
		}
		// Still live: requeue for a later pass.
		n.fwdQueue = append(n.fwdQueue, handle)
		return
	}
}

// Collected returns how many forwarding-pointer slots this node has
// reclaimed.
func (n *Node) Collected() uint64 { return n.collected }

// ForwardingSlots returns how many PCB slots currently hold forwarding
// pointers (diagnostics for the GC tests).
func (n *Node) ForwardingSlots() int {
	c := 0
	for _, sl := range n.pcbs {
		if sl.state == Migrated {
			c++
		}
	}
	return c
}

// handlePCBProbe answers liveness probes, chasing forwarding pointers
// with the forwarding mechanism like resume and notify do.
func (n *Node) handlePCBProbe(ctx *remop.Ctx, env *wire.Envelope) wire.Msg {
	m := env.Body.(*wire.PCBProbe)
	sl := n.pcbs[m.Handle]
	if sl != nil && sl.state == Migrated {
		ctx.Forward(sl.forward.Node)
		return nil
	}
	live := sl != nil && sl.state != Terminated && sl.proc != nil
	return &wire.PCBProbe{Handle: m.Handle, Live: live}
}
