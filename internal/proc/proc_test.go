package proc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/remop"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

// rig assembles a full node stack (ring + remop + SVM + proc) for n
// nodes.
type rig struct {
	eng     *sim.Engine
	nw      *ring.Network
	svms    []*core.SVM
	cluster *Cluster
	sts     []*stats.Node
}

func newRig(t *testing.T, n int, seed int64, bal BalanceConfig) *rig {
	t.Helper()
	eng := sim.New(seed)
	costs := model.Default1988()
	nw := ring.New(eng, costs, n)
	r := &rig{eng: eng, nw: nw}
	var holders []*Node
	for i := 0; i < n; i++ {
		i := i
		cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", i), 1)
		loadFn := func() uint8 {
			if len(holders) > i && holders[i] != nil {
				return holders[i].LoadHint()
			}
			return 0
		}
		ep := remop.NewEndpoint(eng, nw, ring.NodeID(i), cpu, costs, loadFn)
		st := &stats.Node{}
		cfg := core.Config{
			Node:         ring.NodeID(i),
			PageSize:     256,
			NumPages:     64,
			DefaultOwner: 0,
			Algorithm:    core.DynamicDistributed,
			Costs:        costs,
		}
		r.svms = append(r.svms, core.New(eng, ep, cpu, cfg, st))
		r.sts = append(r.sts, st)
	}
	r.cluster = NewCluster(eng, r.svms, bal)
	for i := 0; i < n; i++ {
		holders = append(holders, r.cluster.Node(i))
	}
	return r
}

func (r *rig) run(t *testing.T, horizon time.Duration) {
	t.Helper()
	if err := r.eng.RunUntil(r.eng.Now().Add(horizon)); err != nil {
		t.Fatal(err)
	}
}

func noBalance() BalanceConfig {
	return BalanceConfig{Enabled: false, Interval: 100 * time.Millisecond}
}

func TestCreateRunsProcess(t *testing.T) {
	r := newRig(t, 1, 1, noBalance())
	ran := false
	r.cluster.Node(0).Create(func(p *Process) {
		ran = true
		if p.State() != Running {
			t.Error("process not in Running state inside body")
		}
	}, CreateOpts{Name: "t"})
	r.run(t, time.Minute)
	if !ran {
		t.Fatal("process body never ran")
	}
	if r.sts[0].Proc.Created != 1 || r.sts[0].Proc.Terminated != 1 {
		t.Fatalf("counters: %+v", r.sts[0].Proc)
	}
}

func TestLIFODispatchOrder(t *testing.T) {
	// The dispatcher picks the most recently enqueued ready process (the
	// paper's LIFO policy). One long-running process creates three more;
	// when it suspends, the newest runs first.
	r := newRig(t, 1, 1, noBalance())
	var order []int
	n := r.cluster.Node(0)
	n.Create(func(p *Process) {
		for i := 1; i <= 3; i++ {
			i := i
			n.Create(func(q *Process) { order = append(order, i) }, CreateOpts{Name: fmt.Sprintf("c%d", i)})
		}
	}, CreateOpts{Name: "parent"})
	r.run(t, time.Minute)
	want := []int{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want LIFO %v", order, want)
		}
	}
}

func TestSuspendResume(t *testing.T) {
	r := newRig(t, 1, 1, noBalance())
	n := r.cluster.Node(0)
	var phase []string
	var target *Process
	target = n.Create(func(p *Process) {
		phase = append(phase, "before")
		p.Suspend("test")
		phase = append(phase, "after")
	}, CreateOpts{Name: "sleeper"})
	n.Create(func(p *Process) {
		p.Fiber().Sleep(10 * time.Millisecond)
		phase = append(phase, "resuming")
		p.Node().Resume(p.Fiber(), target.PID())
	}, CreateOpts{Name: "waker"})
	r.run(t, time.Minute)
	if len(phase) != 3 || phase[0] != "before" || phase[1] != "resuming" || phase[2] != "after" {
		t.Fatalf("phases = %v", phase)
	}
}

func TestRemoteResume(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	var target *Process
	done := false
	target = r.cluster.Node(0).Create(func(p *Process) {
		p.Suspend("awaiting remote resume")
		done = true
	}, CreateOpts{Name: "sleeper"})
	r.cluster.Node(1).Create(func(p *Process) {
		p.Fiber().Sleep(50 * time.Millisecond)
		p.Node().Resume(p.Fiber(), target.PID())
	}, CreateOpts{Name: "remote-waker"})
	r.run(t, time.Minute)
	if !done {
		t.Fatal("remote resume did not wake the process")
	}
}

func TestRacedResumeIsNotLost(t *testing.T) {
	// A resume that lands while the target is still Running must leave a
	// token that the next Suspend consumes.
	r := newRig(t, 1, 1, noBalance())
	n := r.cluster.Node(0)
	completed := false
	var target *Process
	target = n.Create(func(p *Process) {
		p.Fiber().Sleep(20 * time.Millisecond) // resume lands during this
		p.Suspend("should consume token")
		completed = true
	}, CreateOpts{Name: "t"})
	r.eng.Schedule(10*time.Millisecond, func() {
		n.resumeLocal(target.Handle())
	})
	r.run(t, time.Minute)
	if !completed {
		t.Fatal("raced resume was lost; process suspended forever")
	}
}

func TestYieldRoundRobins(t *testing.T) {
	r := newRig(t, 1, 1, noBalance())
	n := r.cluster.Node(0)
	var log []string
	mk := func(name string) {
		n.Create(func(p *Process) {
			for i := 0; i < 2; i++ {
				log = append(log, name)
				p.Yield()
			}
		}, CreateOpts{Name: name})
	}
	mk("a")
	mk("b")
	r.run(t, time.Minute)
	// a is dispatched at creation (node idle), b queues; Yield then
	// alternates them.
	joined := fmt.Sprint(log)
	if joined != "[a b a b]" {
		t.Fatalf("yield interleaving = %v", log)
	}
}

func TestProcessSharedMemoryAcrossNodes(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	base := r.svms[0].Base()
	var got uint64
	r.cluster.Node(0).Create(func(p *Process) {
		p.Node().SVM().WriteU64(p, base, 4242)
	}, CreateOpts{Name: "writer"})
	r.cluster.Node(1).Create(func(p *Process) {
		p.Fiber().Sleep(time.Second)
		got = p.Node().SVM().ReadU64(p, base)
	}, CreateOpts{Name: "reader"})
	r.run(t, time.Minute)
	if got != 4242 {
		t.Fatalf("cross-node read = %d", got)
	}
}

func TestMigrateOutMovesReadyProcess(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	n0 := r.cluster.Node(0)
	var ranOn ring.NodeID = -1
	var moved *Process
	// A long-running process occupies node 0 so "victim" stays ready.
	n0.Create(func(p *Process) {
		p.Fiber().Sleep(5 * time.Second)
	}, CreateOpts{Name: "hog"})
	moved = n0.Create(func(p *Process) {
		ranOn = p.Node().ID()
	}, CreateOpts{Name: "victim", Migratable: true})
	// Drive the migration from a bare fiber (as a work-request handler
	// would).
	r.eng.Go("driver", func(f *sim.Fiber) {
		f.Sleep(100 * time.Millisecond)
		if !n0.MigrateOut(f, moved, 1) {
			t.Error("MigrateOut failed")
		}
	})
	r.run(t, time.Minute)
	if ranOn != 1 {
		t.Fatalf("victim ran on node %d, want 1", ranOn)
	}
	if r.sts[0].Proc.MigrationsOut != 1 || r.sts[1].Proc.MigrationsIn != 1 {
		t.Fatalf("migration counters: out=%d in=%d",
			r.sts[0].Proc.MigrationsOut, r.sts[1].Proc.MigrationsIn)
	}
	// Forwarding pointer left behind.
	sl := n0.pcbs[moved.Handle()]
	if sl == nil || sl.state != Migrated || sl.forward.Node != 1 {
		t.Fatalf("no forwarding pointer at source: %+v", sl)
	}
}

func TestMigrationTransfersStackPages(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	n0 := r.cluster.Node(0)
	s0, s1 := r.svms[0], r.svms[1]
	stackBase := s0.Base() + 32*256 // pages 32..35
	var moved *Process
	n0.Create(func(p *Process) { p.Fiber().Sleep(5 * time.Second) }, CreateOpts{Name: "hog"})
	moved = n0.Create(func(p *Process) {
		// Touch the stack so node 0 owns it, then run on node 1.
		p.Node().SVM().WriteU64(p, p.StackBase(), 0xabc)
	}, CreateOpts{Name: "victim", Migratable: true, StackBase: stackBase, StackPages: 4})
	_ = moved
	r.run(t, time.Minute)
	// moved already ran to completion on node 0 (hog sleeps without
	// holding the CPU...). Instead, test the transfer directly: create a
	// fresh ready process and migrate it before it runs.
	var ranOn ring.NodeID = -1
	freshStack := s0.Base() + 40*256 // a region nobody has touched
	n0.Create(func(p *Process) { p.Fiber().Sleep(5 * time.Second) }, CreateOpts{Name: "hog2"})
	fresh := n0.Create(func(p *Process) {
		ranOn = p.Node().ID()
		if v := p.Node().SVM().ReadU64(p, p.StackBase()); v != 0 {
			// Fresh stack: zero-filled at the destination.
			t.Errorf("fresh stack page contains %x", v)
		}
	}, CreateOpts{Name: "fresh", Migratable: true, StackBase: freshStack, StackPages: 4})
	r.eng.Go("driver", func(f *sim.Fiber) {
		if !n0.MigrateOut(f, fresh, 1) {
			t.Error("MigrateOut failed")
		}
	})
	r.run(t, time.Minute)
	if ranOn != 1 {
		t.Fatalf("fresh ran on %d", ranOn)
	}
	// Stack pages now owned by node 1 (transferred, not faulted): node 1
	// must own them and node 0 must not.
	for i := 0; i < 4; i++ {
		pg := s1.PageOf(freshStack + uint64(i*256))
		if !s1.Table().Entry(pg).IsOwner {
			t.Fatalf("stack page %d not owned by destination", pg)
		}
		if s0.Table().Entry(pg).IsOwner {
			t.Fatalf("stack page %d still owned by source", pg)
		}
	}
	// The destination's faults on those pages were local (no coherence
	// faults for the stack writes).
	if r.sts[1].SVM.WriteFaults != 0 {
		t.Fatalf("destination write-faulted %d times on its own transferred stack",
			r.sts[1].SVM.WriteFaults)
	}
}

func TestSelfMigration(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	var before, after ring.NodeID
	r.cluster.Node(0).Create(func(p *Process) {
		before = p.Node().ID()
		p.MigrateTo(1)
		after = p.Node().ID()
	}, CreateOpts{Name: "mover", Migratable: true})
	r.run(t, time.Minute)
	if before != 0 || after != 1 {
		t.Fatalf("self-migration: before=%d after=%d", before, after)
	}
}

func TestPassiveLoadBalancingMovesWork(t *testing.T) {
	bal := BalanceConfig{
		Enabled:       true,
		Interval:      50 * time.Millisecond,
		LowThreshold:  1,
		HighThreshold: 1,
		HintPeriod:    200 * time.Millisecond,
	}
	r := newRig(t, 2, 1, bal)
	n0 := r.cluster.Node(0)
	ranOn := make(map[string]ring.NodeID)
	var makespan sim.Time
	// Pile compute-heavy processes on node 0; node 1 idles and must pull
	// work across.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("w%d", i)
		n0.Create(func(p *Process) {
			p.Compute(2 * time.Second)
			p.Flush()
			ranOn[p.Name()] = p.Node().ID()
			if now := p.Fiber().Now(); now > makespan {
				makespan = now
			}
		}, CreateOpts{Name: name, Migratable: true})
	}
	r.run(t, time.Hour)
	if len(ranOn) != 6 {
		t.Fatalf("only %d processes finished", len(ranOn))
	}
	movedCount := 0
	for _, id := range ranOn {
		if id == 1 {
			movedCount++
		}
	}
	if movedCount == 0 {
		t.Fatal("load balancing never moved work to the idle node")
	}
	if r.sts[1].Proc.WorkRequests == 0 {
		t.Fatal("idle node never asked for work")
	}
	// Balanced run should beat the single-node makespan of 12s by a wide
	// margin; with both nodes working it lands near 6-8s.
	if makespan > sim.Time(11*time.Second) {
		t.Fatalf("balanced makespan %v suggests no real parallelism", makespan)
	}
}

func TestBalancingDisabledKeepsWorkLocal(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	n0 := r.cluster.Node(0)
	for i := 0; i < 4; i++ {
		n0.Create(func(p *Process) {
			p.Compute(time.Second)
			p.Flush()
		}, CreateOpts{Name: fmt.Sprintf("w%d", i), Migratable: true})
	}
	r.run(t, time.Hour)
	if r.sts[0].Proc.MigrationsOut != 0 {
		t.Fatal("migration happened with balancing disabled")
	}
}

func TestNonMigratableProcessStays(t *testing.T) {
	bal := BalanceConfig{Enabled: true, Interval: 50 * time.Millisecond, LowThreshold: 1, HighThreshold: 1}
	r := newRig(t, 2, 1, bal)
	n0 := r.cluster.Node(0)
	for i := 0; i < 4; i++ {
		n0.Create(func(p *Process) {
			p.Compute(time.Second)
			p.Flush()
		}, CreateOpts{Name: fmt.Sprintf("w%d", i), Migratable: false})
	}
	r.run(t, time.Hour)
	if r.sts[0].Proc.MigrationsOut != 0 {
		t.Fatal("non-migratable process migrated")
	}
}

func TestJoin(t *testing.T) {
	r := newRig(t, 1, 1, noBalance())
	p := r.cluster.Node(0).Create(func(p *Process) {
		p.Compute(time.Second)
		p.Flush()
	}, CreateOpts{Name: "worker"})
	var joinedAt sim.Time
	r.eng.Go("joiner", func(f *sim.Fiber) {
		p.Join(f)
		joinedAt = f.Now()
	})
	r.run(t, time.Hour)
	if joinedAt < sim.Time(time.Second) {
		t.Fatalf("join returned at %v, before the worker finished", joinedAt)
	}
}

func TestMigratableToggle(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	n0 := r.cluster.Node(0)
	n0.Create(func(p *Process) { p.Fiber().Sleep(time.Second) }, CreateOpts{Name: "hog"})
	p := n0.Create(func(p *Process) {}, CreateOpts{Name: "v", Migratable: false})
	r.eng.Go("driver", func(f *sim.Fiber) {
		if n0.MigrateOut(f, p, 1) {
			t.Error("migrated a non-migratable process")
		}
		p.SetMigratable(true)
		if !n0.MigrateOut(f, p, 1) {
			t.Error("migration failed after toggling migratable")
		}
	})
	r.run(t, time.Minute)
}

func TestLoadHintsPropagate(t *testing.T) {
	bal := BalanceConfig{Enabled: true, Interval: 50 * time.Millisecond, LowThreshold: 1, HighThreshold: 1, HintPeriod: 100 * time.Millisecond}
	r := newRig(t, 2, 1, bal)
	n0 := r.cluster.Node(0)
	for i := 0; i < 3; i++ {
		n0.Create(func(p *Process) { p.Fiber().Sleep(10 * time.Second) }, CreateOpts{Name: fmt.Sprintf("s%d", i)})
	}
	r.run(t, 2*time.Second)
	// Node 1 observed node 0's load via hint broadcasts (node 0's null
	// process is busy... the hint flows on balancing traffic from node 1
	// asking and node 0 replying, or node 0's idle broadcasts).
	if got := r.svms[1].Endpoint().LoadHintOf(0); got == 0 {
		t.Fatalf("node 1 never learned node 0's load (hint=%d)", got)
	}
}

func TestPCBGarbageCollection(t *testing.T) {
	bal := BalanceConfig{
		Enabled:  false,
		Interval: 20 * time.Millisecond,
		PCBGC:    true,
	}
	r := newRig(t, 2, 1, bal)
	n0 := r.cluster.Node(0)
	// Occupy node 0 so victims stay ready, then migrate them away; their
	// forwarding pointers must be collected after they terminate.
	n0.Create(func(p *Process) { p.Fiber().Sleep(2 * time.Second) }, CreateOpts{Name: "hog"})
	var victims []*Process
	for i := 0; i < 3; i++ {
		victims = append(victims, n0.Create(func(p *Process) {},
			CreateOpts{Name: fmt.Sprintf("v%d", i), Migratable: true}))
	}
	r.eng.Go("driver", func(f *sim.Fiber) {
		for _, v := range victims {
			if !n0.MigrateOut(f, v, 1) {
				t.Error("migration failed")
			}
		}
	})
	r.run(t, time.Second)
	if n0.ForwardingSlots() != 3 {
		t.Fatalf("expected 3 forwarding slots before GC, got %d", n0.ForwardingSlots())
	}
	// Let node 0 idle (hog done after 2s) so its null process collects.
	r.run(t, 30*time.Second)
	if n0.ForwardingSlots() != 0 {
		t.Fatalf("%d forwarding slots survived GC", n0.ForwardingSlots())
	}
	if n0.Collected() != 3 {
		t.Fatalf("collected = %d, want 3", n0.Collected())
	}
}

func TestPCBGCKeepsLiveProcesses(t *testing.T) {
	bal := BalanceConfig{Enabled: false, Interval: 20 * time.Millisecond, PCBGC: true}
	r := newRig(t, 2, 1, bal)
	n0 := r.cluster.Node(0)
	n0.Create(func(p *Process) { p.Fiber().Sleep(time.Second) }, CreateOpts{Name: "hog"})
	longRunner := n0.Create(func(p *Process) {
		p.Fiber().Sleep(20 * time.Second)
	}, CreateOpts{Name: "long", Migratable: true})
	r.eng.Go("driver", func(f *sim.Fiber) {
		if !n0.MigrateOut(f, longRunner, 1) {
			t.Error("migration failed")
		}
	})
	// GC probes must keep the slot while the process lives on node 1.
	r.run(t, 10*time.Second)
	if n0.ForwardingSlots() != 1 {
		t.Fatalf("live process's forwarding pointer collected early")
	}
	// Resume-by-old-PID still works through the pointer.
	r.run(t, 15*time.Second) // long runner ends at ~20s
	r.run(t, 10*time.Second) // then GC reclaims
	if n0.ForwardingSlots() != 0 {
		t.Fatal("slot not reclaimed after termination")
	}
}

func TestPCBProbeChasing(t *testing.T) {
	// A doubly-migrated process: node 0's probe must chase 0 -> 1 -> 2.
	bal := BalanceConfig{Enabled: false, Interval: 25 * time.Millisecond, PCBGC: true}
	r := newRig(t, 3, 1, bal)
	n0, n1 := r.cluster.Node(0), r.cluster.Node(1)
	n0.Create(func(p *Process) { p.Fiber().Sleep(time.Second) }, CreateOpts{Name: "hog0"})
	n1.Create(func(p *Process) { p.Fiber().Sleep(3 * time.Second) }, CreateOpts{Name: "hog1"})
	v := n0.Create(func(p *Process) {}, CreateOpts{Name: "v", Migratable: true})
	r.eng.Go("driver", func(f *sim.Fiber) {
		if !n0.MigrateOut(f, v, 1) {
			t.Error("first hop failed")
		}
		f.Sleep(100 * time.Millisecond)
		if !n1.MigrateOut(f, v, 2) {
			t.Error("second hop failed")
		}
	})
	r.run(t, time.Minute)
	if n0.ForwardingSlots() != 0 || n1.ForwardingSlots() != 0 {
		t.Fatalf("forwarding chains not collected: n0=%d n1=%d",
			n0.ForwardingSlots(), n1.ForwardingSlots())
	}
}

func TestMigrationUnderDirectoryManagers(t *testing.T) {
	// The stack-page ownership handoff bypasses the fault protocol, so
	// under the centralized and fixed managers the directory must learn
	// about it (MgrConfirm with the Migration flag) — and a later fault
	// on a migrated stack page must still find its owner.
	for _, alg := range []core.Algorithm{core.ImprovedCentralized, core.FixedDistributed} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			eng := sim.New(1)
			costs := model.Default1988()
			nw := ring.New(eng, costs, 3)
			var svms []*core.SVM
			for i := 0; i < 3; i++ {
				cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", i), 1)
				ep := remop.NewEndpoint(eng, nw, ring.NodeID(i), cpu, costs, nil)
				svms = append(svms, core.New(eng, ep, cpu, core.Config{
					Node: ring.NodeID(i), PageSize: 256, NumPages: 64,
					DefaultOwner: 0, Algorithm: alg, Costs: costs,
				}, &stats.Node{}))
			}
			cluster := NewCluster(eng, svms, BalanceConfig{Interval: 50 * time.Millisecond})
			n0 := cluster.Node(0)
			stackBase := svms[0].Base() + 32*256
			n0.Create(func(p *Process) { p.Fiber().Sleep(time.Second) }, CreateOpts{Name: "hog"})
			var ranOn ring.NodeID = -1
			v := n0.Create(func(p *Process) {
				// Touch the transferred stack at the destination.
				p.Node().SVM().WriteU64(p, p.StackBase(), 0x77)
				ranOn = p.Node().ID()
			}, CreateOpts{Name: "v", Migratable: true, StackBase: stackBase, StackPages: 2})
			eng.Go("driver", func(f *sim.Fiber) {
				if !n0.MigrateOut(f, v, 1) {
					t.Error("migration failed")
				}
			})
			if err := eng.RunUntil(sim.Time(10 * time.Second)); err != nil {
				t.Fatal(err)
			}
			if ranOn != 1 {
				t.Fatalf("ran on %d", ranOn)
			}
			// Node 2 faults on the migrated stack page: the directory must
			// route it to node 1 (possibly via the probOwner recovery hop).
			var got uint64
			cluster.Node(2).Create(func(p *Process) {
				got = p.Node().SVM().ReadU64(p, stackBase)
			}, CreateOpts{Name: "prober"})
			if err := eng.RunUntil(sim.Time(30 * time.Second)); err != nil {
				t.Fatal(err)
			}
			if got != 0x77 {
				t.Fatalf("fault on migrated stack page read %#x, want 0x77", got)
			}
			if errs := core.VerifyCoherence(svms); len(errs) != 0 {
				t.Fatalf("invariants: %v", errs)
			}
		})
	}
}

func TestDeterministicProcScheduling(t *testing.T) {
	run := func() string {
		bal := DefaultBalance()
		r := newRig(t, 3, 99, bal)
		var log string
		n0 := r.cluster.Node(0)
		for i := 0; i < 6; i++ {
			i := i
			n0.Create(func(p *Process) {
				p.Compute(time.Duration(100+i*37) * time.Millisecond)
				p.Flush()
				log += fmt.Sprintf("%s@%d;", p.Name(), p.Node().ID())
			}, CreateOpts{Name: fmt.Sprintf("w%d", i), Migratable: true})
		}
		r.run(t, time.Minute)
		return log
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("scheduling diverged between identical runs:\n%s\n%s", a, b)
	}
}

func TestWorkRequestRejectedWhenBelowThreshold(t *testing.T) {
	// A work request to a node at or under the high threshold must be
	// declined — the paper's rejection-minimizing hints exist because
	// rejections are real.
	bal := BalanceConfig{Enabled: true, Interval: 40 * time.Millisecond,
		LowThreshold: 1, HighThreshold: 1}
	r := newRig(t, 2, 1, bal)
	// Node 0 has exactly one (running) process: not over the threshold.
	r.cluster.Node(0).Create(func(p *Process) {
		p.Compute(2 * time.Second)
		p.Flush()
	}, CreateOpts{Name: "only", Migratable: true})
	r.run(t, 5*time.Second)
	if r.sts[0].Proc.MigrationsOut != 0 {
		t.Fatal("node at threshold gave work away")
	}
	if r.sts[1].Proc.WorkRequests == 0 {
		t.Fatal("idle node never asked")
	}
}

func TestResumeOfTerminatedProcessIsHarmless(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	p := r.cluster.Node(0).Create(func(p *Process) {}, CreateOpts{Name: "short"})
	r.run(t, time.Second)
	if p.State() != Terminated {
		t.Fatal("not terminated")
	}
	// Local and remote resumes of a dead PID must be no-ops.
	r.cluster.Node(0).resumeLocal(p.Handle())
	r.cluster.Node(1).Create(func(q *Process) {
		q.Node().Resume(q.Fiber(), PID{Node: 0, PCB: p.Handle()})
	}, CreateOpts{Name: "resumer"})
	r.run(t, time.Minute)
	if r.sts[0].Proc.Wakeups != 0 {
		t.Fatal("dead process woke")
	}
}

func TestMigrateOutOfRunningProcessFails(t *testing.T) {
	r := newRig(t, 2, 1, noBalance())
	p := r.cluster.Node(0).Create(func(p *Process) {
		p.Fiber().Sleep(time.Second)
	}, CreateOpts{Name: "runner", Migratable: true})
	r.eng.Go("driver", func(f *sim.Fiber) {
		f.Sleep(100 * time.Millisecond) // p is running now, not ready
		if r.cluster.Node(0).MigrateOut(f, p, 1) {
			t.Error("migrated a running process")
		}
	})
	r.run(t, time.Minute)
}

func TestLoadHintByteSaturates(t *testing.T) {
	r := newRig(t, 1, 1, noBalance())
	n := r.cluster.Node(0)
	n.counted = 300 // beyond the byte
	if n.LoadHint() != 255 {
		t.Fatalf("hint = %d, want saturation at 255", n.LoadHint())
	}
	n.counted = 0
}

func TestProcessStates(t *testing.T) {
	cases := []struct {
		s    State
		want string
	}{
		{Created, "created"}, {Ready, "ready"}, {Running, "running"},
		{Suspended, "suspended"}, {Terminated, "terminated"}, {Migrated, "migrated"},
		{State(99), "State(99)"},
	}
	for _, c := range cases {
		if c.s.String() != c.want {
			t.Fatalf("%d.String() = %q", c.s, c.s.String())
		}
	}
	pid := PID{Node: 2, PCB: 0xab}
	if pid.String() != "p2/0xab" {
		t.Fatalf("PID string = %q", pid.String())
	}
}
