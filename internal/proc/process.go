package proc

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/drace"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Body is a process's program. It receives the Process itself, which is
// also the core.Ctx used for every shared-memory access.
type Body func(p *Process)

// CreateOpts configures process creation.
type CreateOpts struct {
	// Name labels the process in traces and deadlock reports.
	Name string
	// Migratable marks the process eligible for load balancing; the
	// paper's processes carry this as a PCB field togglable at runtime.
	Migratable bool
	// StackBase/StackPages describe the process's stack region in shared
	// virtual memory (allocated by the caller, normally the ivy facade).
	// Zero StackPages means no simulated stack region.
	StackBase  uint64
	StackPages int
}

// Process is a lightweight IVY process. It implements core.Ctx: compute
// charges accumulate and settle against the CPU of whatever node the
// process currently occupies.
type Process struct {
	handle  uint64
	name    string
	node    *Node // current home; changes on migration
	body    Body
	state   State
	started bool
	fiber   *sim.Fiber

	migratable bool
	stackBase  uint64
	stackPages int

	debt time.Duration
	// quantum caches node.costs.ComputeQuantum so the per-access charge
	// compares against a local field instead of chasing through the node;
	// it is refreshed when the process changes nodes (migration arrival).
	quantum time.Duration

	// tlb is the process's software translation cache (nil when the
	// cluster disables TLBs). It travels with the process across
	// migrations; the SVM-binding check inside flushes it on arrival.
	tlb *core.TLB

	// pendingWake absorbs a resume that raced ahead of the Suspend it was
	// meant for (e.g. an eventcount Advance running between a waiter's
	// unlock and its Suspend); the next Suspend consumes it and returns
	// immediately. Callers of Suspend must re-check their predicate.
	pendingWake bool

	// doneWaiters are fibers blocked in Join.
	doneWaiters []*sim.Fiber

	// race is the process's happens-before thread (nil = drace off). It
	// travels with the process across migrations: the same logical thread
	// keeps its vector clock wherever it runs.
	race *drace.Thread

	// span is the process's current residence span (one per node visited;
	// migration closes it and opens a new one on the destination).
	span trace.SpanID
}

// Create makes a new process homed on this node and puts it on the ready
// queue. The creator is charged the creation cost if it is a process
// itself (the facade charges explicitly).
func (n *Node) Create(body Body, opts CreateOpts) *Process {
	n.cluster.nextHandle++
	p := &Process{
		handle:     n.cluster.nextHandle,
		name:       opts.Name,
		node:       n,
		body:       body,
		state:      Created,
		migratable: opts.Migratable,
		stackBase:  opts.StackBase,
		stackPages: opts.StackPages,
		quantum:    n.costs.ComputeQuantum,
	}
	if !n.cluster.disableTLB {
		// The TLB charges accesses straight into this process's debt
		// accumulator (see core.NewTLB); the quantum mirrors Charge's.
		p.tlb = core.NewTLB(&p.debt, p.quantum)
	}
	if p.name == "" {
		p.name = fmt.Sprintf("proc%d", p.handle)
	}
	if d := n.cluster.race; d != nil {
		// Fork edge: everything the creator did so far happens-before
		// everything the child does. A creator outside race tracking (the
		// test harness, the facade bootstrap) forks from the root thread.
		p.race = d.Fork(d.ThreadOf(n.eng.Current()), p.name)
	}
	n.cluster.procs[p.handle] = p
	n.pcbs[p.handle] = &slot{proc: p, state: Ready}
	n.counted++
	n.st.Proc.Created++
	if trc := n.cluster.trc; trc != nil {
		p.span = trc.Begin(int(n.id), trace.PhaseProcess, 0, trace.NoPage, p.name)
	}
	n.enqueue(p)
	return p
}

// PID returns the process's current identity.
func (p *Process) PID() PID { return PID{Node: p.node.id, PCB: p.handle} }

// Handle returns the cluster-unique PCB handle.
func (p *Process) Handle() uint64 { return p.handle }

// Name returns the diagnostic name.
func (p *Process) Name() string { return p.name }

// Node returns the node the process currently runs on.
func (p *Process) Node() *Node { return p.node }

// State returns the scheduling state.
func (p *Process) State() State { return p.state }

// Migratable reports the PCB's migratable attribute.
func (p *Process) Migratable() bool { return p.migratable }

// SetMigratable toggles the attribute at run time, as the paper's
// primitive allows.
func (p *Process) SetMigratable(v bool) { p.migratable = v }

// StackBase returns the stack region's base address (0 if none).
func (p *Process) StackBase() uint64 { return p.stackBase }

// StackPages returns the stack region's size in pages.
func (p *Process) StackPages() int { return p.stackPages }

// --- core.Ctx ----------------------------------------------------------

// Fiber returns the fiber executing the process.
func (p *Process) Fiber() *sim.Fiber { return p.fiber }

// Race returns the process's happens-before thread (nil = drace off).
func (p *Process) Race() *drace.Thread { return p.race }

// TLB returns the process's translation cache (nil = disabled).
func (p *Process) TLB() *core.TLB { return p.tlb }

// Charge accumulates compute time against the current node's CPU,
// settling in quanta.
func (p *Process) Charge(d time.Duration) {
	p.debt += d
	if p.debt >= p.quantum {
		p.Flush()
	}
}

// Flush settles outstanding compute debt in quantum-sized CPU holds,
// releasing between chunks so the node keeps servicing remote requests
// during long computations.
func (p *Process) Flush() {
	q := p.node.costs.ComputeQuantum
	for p.debt > 0 {
		d := p.debt
		if d > q {
			d = q
		}
		p.debt -= d
		cpu := p.node.cpu
		cpu.Acquire(p.fiber)
		p.fiber.Sleep(d)
		cpu.Release()
	}
}

// Compute charges d of local (private-memory) computation.
func (p *Process) Compute(d time.Duration) { p.Charge(d) }

// LocalOps charges n local operations at the calibrated per-op cost.
func (p *Process) LocalOps(n int) {
	p.Charge(time.Duration(n) * p.node.costs.LocalOp)
}

// --- Lifecycle ----------------------------------------------------------

// start launches the fiber; called by the dispatcher on first dispatch.
func (p *Process) start() {
	p.started = true
	p.fiber = p.node.eng.Go(p.name, func(f *sim.Fiber) {
		p.fiber = f
		if d := p.node.cluster.race; d != nil && p.race != nil {
			d.Bind(f, p.race)
		}
		p.body(p)
		p.terminate()
	})
}

// terminate finalizes the process after its body returns.
func (p *Process) terminate() {
	p.Flush()
	n := p.node
	// Termination is the final release: under release consistency every
	// write the process buffered must reach its home before joiners (or
	// the quiescent-state digest) look at memory.
	n.svm.RCReleaseFiber(p.fiber)
	p.state = Terminated
	if sl := n.pcbs[p.handle]; sl != nil {
		sl.state = Terminated
		sl.proc = nil
	}
	delete(n.cluster.procs, p.handle)
	n.counted--
	n.st.Proc.Terminated++
	if n.current == p {
		n.current = nil
	}
	for _, w := range p.doneWaiters {
		w.Unpark()
	}
	p.doneWaiters = nil
	if trc := n.cluster.trc; trc != nil && p.span != 0 {
		trc.End(p.span)
		p.span = 0
	}
	n.dispatch()
}

// Join blocks the calling fiber until p terminates. It is a harness
// primitive (tests, facade), not an IVY client call — client programs
// synchronize with eventcounts.
func (p *Process) Join(f *sim.Fiber) {
	if p.state != Terminated {
		p.doneWaiters = append(p.doneWaiters, f)
		f.Park("joining " + p.name)
	}
	if d := p.node.cluster.race; d != nil {
		// Join edge: everything the terminated process did happens-before
		// everything the joiner does next. Joiners outside race tracking
		// (the run watcher) resolve to a nil thread and are skipped.
		d.Join(d.ThreadOf(f), p.race)
	}
}

// Suspend blocks the process until Resume. The node dispatches the next
// ready process meanwhile — a voluntary context switch, unlike a page
// fault, during which the paper's system runs nothing else.
func (p *Process) Suspend(reason string) {
	if p.node.current != p {
		panic("proc: Suspend called by a process that is not running")
	}
	if p.pendingWake {
		p.pendingWake = false
		return
	}
	p.Flush()
	p.Charge(p.node.costs.CtxSwitch)
	p.Flush()
	// Re-check the token: the flushes above can yield (CPU waits), and a
	// wake that lands in that window would otherwise be lost — we would
	// park after the wake had already been delivered.
	if p.pendingWake {
		p.pendingWake = false
		return
	}
	n := p.node
	p.state = Suspended
	n.current = nil
	n.dispatch()
	p.fiber.Park(reason)
	// Resumed: the dispatcher made us current again; p.node may have
	// changed if we were migrated while suspended is impossible (only
	// ready processes migrate), but the wake may happen on a new node
	// after a self-migration sequence.
}

// Yield puts the process at the back of the ready queue and runs the
// next one — cooperative sharing within a node.
func (p *Process) Yield() {
	n := p.node
	if n.current != p {
		panic("proc: Yield called by a process that is not running")
	}
	if len(n.ready) == 0 {
		return // nothing else to run; keep going
	}
	p.Flush()
	p.Charge(n.costs.CtxSwitch)
	p.Flush()
	p.state = Ready
	n.current = nil
	// Back of the LIFO stack = dispatched last among current entries.
	n.ready = append([]*Process{p}, n.ready...)
	n.dispatch()
	p.fiber.Park("yielded")
}

// resumeLocal makes a suspended process ready again; used by the resume
// and eventcount-notify handlers and by local Advance.
func (n *Node) resumeLocal(handle uint64) bool {
	sl := n.pcbs[handle]
	if sl == nil {
		return false
	}
	switch sl.state {
	case Migrated, Terminated:
		return false
	default:
	}
	p := sl.proc
	if p == nil {
		return true
	}
	if p.state != Suspended {
		// The wake raced ahead of the Suspend it targets: leave a token.
		p.pendingWake = true
		return true
	}
	n.st.Proc.Wakeups++
	n.enqueue(p)
	return true
}

// Resume wakes the process identified by pid, locally or via a remote
// resume operation. The caller runs on fiber f of node n.
func (n *Node) Resume(f *sim.Fiber, pid PID) {
	if pid.Node == n.id {
		n.resumeLocal(pid.PCB)
		return
	}
	n.ep.NotifyReliable(pid.Node, &wire.ResumeReq{PCBAddr: pid.PCB})
	_ = f // the notify is asynchronous; f documents the calling context
}
