package proc

import (
	"fmt"

	"repro/internal/mmu"
	"repro/internal/remop"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// pcbImage is the wire form of a PCB: what MigrateReq.PCB carries. The
// handle doubles as the cluster-wide identity the destination uses to
// bind the carried state back to the live process object.
type pcbImage struct {
	handle     uint64
	migratable bool
	live       bool // self-migration of the running process
	stackBase  uint64
	stackPages uint32
	name       string
}

func encodePCB(p *Process, live bool) []byte {
	b := wire.NewBuffer()
	b.PutU64(p.handle)
	b.PutBool(p.migratable)
	b.PutBool(live)
	b.PutU64(p.stackBase)
	b.PutU32(uint32(p.stackPages))
	b.PutString(p.name)
	return b.Bytes()
}

func decodePCB(data []byte) (pcbImage, error) {
	r := wire.NewReader(data)
	img := pcbImage{
		handle:     r.U64(),
		migratable: r.Bool(),
		live:       r.Bool(),
		stackBase:  r.U64(),
		stackPages: r.U32(),
		name:       r.String(),
	}
	return img, r.Err()
}

// stackTransfer is the collected stack state leaving the source.
type stackTransfer struct {
	current     uint32 // page id of the current stack page
	currentData []byte // nil when the page was not transferable
	upper       []uint32
}

// collectStack relinquishes the process's transferable stack pages in
// favour of dst. The current stack page moves with its data ("to avoid a
// page fault in the process dispatcher"); the upper portion transfers
// ownership only. Pages not owned here, or mid-fault, are skipped — the
// destination demand-faults them, like the stack's lower portion.
func (n *Node) collectStack(f *sim.Fiber, p *Process, dst ring.NodeID) stackTransfer {
	var tr stackTransfer
	if p.stackPages == 0 {
		return tr
	}
	s := n.svm
	curPage := s.PageOf(p.stackBase)
	tr.current = uint32(curPage)
	if data, ok := s.ReleasePageForMigration(f, curPage, dst, true); ok {
		tr.currentData = data
	}
	for i := 1; i < p.stackPages; i++ {
		pg := s.PageOf(p.stackBase + uint64(i*s.PageSize()))
		if _, ok := s.ReleasePageForMigration(f, pg, dst, false); ok {
			tr.upper = append(tr.upper, uint32(pg))
		}
	}
	return tr
}

// reclaimStack restores the source's ownership after a rejected
// migration.
func (n *Node) reclaimStack(f *sim.Fiber, tr stackTransfer) {
	s := n.svm
	if tr.currentData != nil {
		s.ReclaimPage(f, mmu.PageID(tr.current), tr.currentData)
	}
	for _, pg := range tr.upper {
		s.ReclaimPage(f, mmu.PageID(pg), nil)
	}
}

// notifyManagers completes the transfer by informing the coherence
// directory (where one exists) of every moved page.
func (n *Node) notifyManagers(tr stackTransfer, dst ring.NodeID) {
	s := n.svm
	if tr.currentData != nil {
		s.MigrateOwnership(mmu.PageID(tr.current), dst)
	}
	for _, pg := range tr.upper {
		s.MigrateOwnership(mmu.PageID(pg), dst)
	}
}

// removeReady takes p out of the ready queue, returning false if it was
// not there (e.g. it was dispatched meanwhile).
func (n *Node) removeReady(p *Process) bool {
	for i, q := range n.ready {
		if q == p {
			copy(n.ready[i:], n.ready[i+1:])
			n.ready[len(n.ready)-1] = nil
			n.ready = n.ready[:len(n.ready)-1]
			return true
		}
	}
	return false
}

// pickMigratable returns the oldest migratable ready process, or nil.
func (n *Node) pickMigratable() *Process {
	for _, p := range n.ready {
		if p.migratable {
			return p
		}
	}
	return nil
}

// MigrateOut moves a ready process to dst: the paper's four steps — send
// the PCB, copy the current stack page, transfer upper-stack ownership,
// and enqueue at the destination. Runs on fiber f (a work-request
// handler or the facade). Returns whether the destination accepted.
func (n *Node) MigrateOut(f *sim.Fiber, p *Process, dst ring.NodeID) bool {
	if dst == n.id || !p.migratable || p.state != Ready || p.node != n {
		return false
	}
	if !n.removeReady(p) {
		return false
	}
	// Handing a process to another node is a synchronization release:
	// under release consistency the source's buffered writes — including
	// any made by p before it went ready — must be committed before the
	// destination can run it.
	n.svm.RCReleaseFiber(f)
	tr := n.collectStack(f, p, dst)
	req := &wire.MigrateReq{
		PCB:        encodePCB(p, false),
		StackPage:  tr.current,
		StackData:  tr.currentData,
		UpperPages: tr.upper,
		VC:         raceVC(p),
	}
	reply, err := n.ep.Call(f, dst, req)
	if err != nil {
		n.reclaimStack(f, tr)
		n.enqueue(p)
		return false
	}
	if _, rejected := reply.(*wire.MigrateReject); rejected {
		n.st.Proc.MigrateReject++
		n.reclaimStack(f, tr)
		n.enqueue(p)
		return false
	}
	n.notifyManagers(tr, dst)
	n.st.Proc.MigrationsOut++
	return true
}

// MigrateTo moves the calling (running) process to dst and continues it
// there once the destination dispatches it.
func (p *Process) MigrateTo(dst ring.NodeID) {
	n := p.node
	if dst == n.id {
		return
	}
	if n.current != p {
		panic("proc: MigrateTo called by a process that is not running")
	}
	p.Flush()
	n.current = nil
	n.dispatch() // the source moves on to its next ready process
	// Self-migration releases at the source: the process's own writes
	// must be visible wherever it lands (see MigrateOut).
	n.svm.RCReleaseFiber(p.fiber)
	tr := n.collectStack(p.fiber, p, dst)
	req := &wire.MigrateReq{
		PCB:        encodePCB(p, true),
		StackPage:  tr.current,
		StackData:  tr.currentData,
		UpperPages: tr.upper,
		VC:         raceVC(p),
	}
	reply, err := n.ep.Call(p.fiber, dst, req)
	rejected := false
	if err != nil {
		rejected = true
	} else if _, r := reply.(*wire.MigrateReject); r {
		rejected = true
	}
	if rejected {
		n.st.Proc.MigrateReject++
		n.reclaimStack(p.fiber, tr)
		p.state = Ready
		n.enqueue(p)
		p.fiber.Park("re-queued after rejected migration")
		return
	}
	n.notifyManagers(tr, dst)
	n.st.Proc.MigrationsOut++
	// The destination's handler rebound p.node; queue ourselves there
	// and wait for its dispatcher.
	dstNode := p.node
	if dstNode.id != dst {
		panic(fmt.Sprintf("proc: migration rebind failed: on %d, want %d", dstNode.id, dst))
	}
	p.state = Ready
	dstNode.enqueue(p)
	p.fiber.Park("awaiting dispatch after migration")
}

// raceVC snapshots p's vector clock for the migration message, or nil
// with drace off. The process object (and so its detector thread) is
// shared simulator state, but the snapshot documents on the wire what a
// distributed implementation would ship: the migrating thread's clock
// travels with the PCB.
func raceVC(p *Process) []uint64 {
	if p.race == nil {
		return nil
	}
	return p.race.Snapshot()
}

// handleMigrate is the destination side: bind the carried PCB to the
// live process, adopt the stack pages, leave a forwarding pointer at the
// source, and put the process on the ready queue.
func (n *Node) handleMigrate(ctx *remop.Ctx, env *wire.Envelope) wire.Msg {
	m := env.Body.(*wire.MigrateReq)
	img, err := decodePCB(m.PCB)
	if err != nil {
		return &wire.MigrateReject{Reason: wire.RejectNoProcess}
	}
	if n.stopped {
		return &wire.MigrateReject{Reason: wire.RejectBusy}
	}
	p := n.cluster.procs[img.handle]
	if p == nil {
		return &wire.MigrateReject{Reason: wire.RejectNoProcess}
	}
	f := ctx.Fiber()
	if m.StackData != nil {
		n.svm.AdoptPage(f, mmu.PageID(m.StackPage), m.StackData)
	}
	for _, pg := range m.UpperPages {
		n.svm.AdoptPage(f, mmu.PageID(pg), nil)
	}
	// Join the carried vector clock back into the thread. Same thread, so
	// this is a no-op here — it exists to exercise the wire mechanism the
	// migration handoff edge rides on (see PROTOCOL.md).
	p.race.JoinVC(m.VC)
	// The matching acquire: the destination must drop cached data pages
	// the source's release (in MigrateOut/MigrateTo) published.
	n.svm.RCAcquireFiber(f)
	old := p.node
	if sl := old.pcbs[p.handle]; sl != nil {
		sl.proc = nil
		sl.state = Migrated
		sl.forward = PID{Node: n.id, PCB: p.handle}
		old.fwdQueue = append(old.fwdQueue, p.handle)
	}
	old.counted--
	p.node = n
	p.quantum = n.costs.ComputeQuantum
	if p.tlb != nil {
		p.tlb.SetQuantum(p.quantum)
	}
	n.pcbs[p.handle] = &slot{proc: p, state: Ready}
	n.counted++
	n.st.Proc.MigrationsIn++
	if trc := n.cluster.trc; trc != nil {
		// Split the residence span at the node boundary and mark the
		// arrival so migrations show as track handoffs in the viewer.
		if p.span != 0 {
			trc.End(p.span)
		}
		trc.Instant(int(n.id), trace.PhaseMigrate, 0, trace.NoPage,
			fmt.Sprintf("%s: node%d→node%d", p.name, old.id, n.id))
		p.span = trc.Begin(int(n.id), trace.PhaseProcess, 0, trace.NoPage, p.name)
	}
	if !img.live {
		n.enqueue(p)
	}
	// A live (self-migrating) process enqueues itself when its fiber
	// observes the acceptance; enqueueing here would unpark a fiber that
	// is still inside its remote call.
	return &wire.MigrateAccept{}
}
