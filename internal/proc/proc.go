// Package proc implements IVY's process management: lightweight
// processes with PCBs, per-node LIFO ready queues and a cooperative
// dispatcher, the null process with its passive load-balancing algorithm
// (thresholds over the process count, driven by the load hints
// piggybacked on every message), and process migration — the PCB and the
// current stack page move to the destination, the unused upper stack
// pages transfer ownership without data movement, and the vacated PCB
// keeps a forwarding pointer.
//
// A Process implements core.Ctx, so every shared-memory access a process
// makes is charged to whatever node the process currently runs on —
// after migration, its faults and compute bill the destination.
package proc

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/drace"
	"repro/internal/model"
	"repro/internal/remop"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// PID identifies a process: the processor it lives on and its PCB handle
// (the paper's "processor number and PCB address" pair; handles are
// unique cluster-wide, so a forwarded message's handle stays valid at
// the destination).
type PID struct {
	Node ring.NodeID
	PCB  uint64
}

func (p PID) String() string { return fmt.Sprintf("p%d/%#x", p.Node, p.PCB) }

// State is a process's scheduling state.
type State uint8

const (
	Created State = iota
	Ready
	Running
	Suspended
	Terminated
	Migrated // the PCB slot holds only a forwarding pointer
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Terminated:
		return "terminated"
	case Migrated:
		return "migrated"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// BalanceConfig tunes the null process's passive load balancing.
type BalanceConfig struct {
	// Enabled turns the algorithm on. Disabled, idle nodes simply spin.
	Enabled bool
	// Interval is the null process's timeout between balancing attempts.
	Interval time.Duration
	// LowThreshold: a node asks for work when its process count
	// (ready + suspended + running) falls below this.
	LowThreshold int
	// HighThreshold: a node grants work only while its process count
	// exceeds this. The paper found count-with-thresholds works where
	// ready-count alone does not.
	HighThreshold int
	// HintPeriod, when positive, makes idle nodes broadcast their load
	// byte with the no-reply scheme so hints stay fresh on quiet rings.
	HintPeriod time.Duration
	// PCBGC enables reclamation of forwarding-pointer PCB slots left by
	// migrations, done by the null process when idle — the extension the
	// paper leaves unimplemented.
	PCBGC bool
}

// DefaultBalance returns the configuration used by the experiments.
func DefaultBalance() BalanceConfig {
	return BalanceConfig{
		Enabled:       true,
		Interval:      100 * time.Millisecond,
		LowThreshold:  1,
		HighThreshold: 1,
		HintPeriod:    time.Second,
		PCBGC:         true,
	}
}

// slot is a PCB registry entry: a live process or a forwarding pointer.
type slot struct {
	proc    *Process // nil when migrated away or terminated
	forward PID      // valid when state == Migrated
	state   State
}

// Node is one processor's process manager.
type Node struct {
	id      ring.NodeID
	eng     *sim.Engine
	cpu     *sim.Resource
	svm     *core.SVM
	ep      *remop.Endpoint
	costs   model.Costs
	st      *stats.Node
	cluster *Cluster
	bal     BalanceConfig

	ready   []*Process // LIFO: dispatch pops the most recently pushed
	current *Process
	pcbs    map[uint64]*slot
	counted int // live processes homed here (ready+running+suspended)

	nullFiber  *sim.Fiber
	nullParked bool
	lastHint   sim.Time
	probeNext  int // round-robin cursor for hint-less probing
	stopped    bool

	// fwdQueue lists PCB handles whose local slots are forwarding
	// pointers, awaiting garbage collection.
	fwdQueue  []uint64
	collected uint64
}

// Cluster wires the per-node process managers together and owns the
// cluster-wide PCB handle space.
type Cluster struct {
	eng        *sim.Engine
	nodes      []*Node
	nextHandle uint64
	// procs lets migration handlers recover the live Process object from
	// the handle carried in the wire PCB (the Go closure is the "program
	// code", which in IVY is replicated on every node).
	procs map[uint64]*Process

	trc *trace.Collector

	// race is the cluster's happens-before detector (nil = drace off).
	// Create forks a detector thread per process, Join closes the edge,
	// and the eventcount-notify/migration handlers carry vector clocks
	// across nodes.
	race *drace.Detector

	// disableTLB makes Create hand out nil TLBs, forcing every access
	// through the checked path (the property test's control arm).
	disableTLB bool
}

// SetTraceCollector installs the span collector (nil = off): process
// lifetimes become spans on their home node's track, migrations split
// the span and mark the arrival.
func (c *Cluster) SetTraceCollector(t *trace.Collector) { c.trc = t }

// SetDisableTLB turns process software TLBs off (before any Create).
func (c *Cluster) SetDisableTLB(v bool) { c.disableTLB = v }

// SetRaceDetector arms happens-before race tracking on process
// lifecycle events (before any Create).
func (c *Cluster) SetRaceDetector(d *drace.Detector) { c.race = d }

// NewCluster creates the process-management layer over the given SVMs.
// Entry i of svms/eps/cpus/sts belongs to node i.
func NewCluster(eng *sim.Engine, svms []*core.SVM, bal BalanceConfig) *Cluster {
	c := &Cluster{eng: eng, procs: make(map[uint64]*Process)}
	for _, s := range svms {
		// The node id comes from the endpoint, not the slice index: a
		// single-process cluster passes all N SVMs (ids 0..N-1), while an
		// ivynode process passes only its own SVM, whose endpoint already
		// carries its rank in the multi-process cluster.
		n := &Node{
			id:      s.Endpoint().ID(),
			eng:     eng,
			cpu:     s.CPU(),
			svm:     s,
			ep:      s.Endpoint(),
			costs:   costsOf(s),
			st:      s.Stats(),
			cluster: c,
			bal:     bal,
			pcbs:    make(map[uint64]*slot),
		}
		c.nodes = append(c.nodes, n)
		n.installHandlers()
		n.startNull()
	}
	return c
}

// costsOf recovers the cost model; SVM validated it at construction.
func costsOf(s *core.SVM) model.Costs { return s.Costs() }

// Node returns node i's manager.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Stop shuts down the null processes; outstanding processes keep running
// to completion but no further balancing happens.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.stopped = true
		n.wakeNull()
	}
}

// ID returns the node's ring ID.
func (n *Node) ID() ring.NodeID { return n.id }

// SVM returns the node's shared-virtual-memory instance.
func (n *Node) SVM() *core.SVM { return n.svm }

// Load returns the process count the balancing algorithm uses.
func (n *Node) Load() int { return n.counted }

// LoadHint is the byte stamped on outgoing messages.
func (n *Node) LoadHint() uint8 {
	if n.counted > 255 {
		return 255
	}
	return uint8(n.counted)
}

// ReadyLen returns the ready-queue length (diagnostics).
func (n *Node) ReadyLen() int { return len(n.ready) }

// Current returns the running process, if any.
func (n *Node) Current() *Process { return n.current }

// enqueue makes p ready on this node and dispatches if the node is idle.
func (n *Node) enqueue(p *Process) {
	p.state = Ready
	n.ready = append(n.ready, p)
	if n.current == nil {
		n.dispatch()
	}
}

// dispatch picks the front of the LIFO ready queue (the paper's policy:
// no priorities, last in first out) and runs it; with nothing ready it
// wakes the null process.
func (n *Node) dispatch() {
	if n.current != nil {
		return
	}
	if len(n.ready) == 0 {
		n.wakeNull()
		return
	}
	p := n.ready[len(n.ready)-1]
	n.ready[len(n.ready)-1] = nil
	n.ready = n.ready[:len(n.ready)-1]
	n.current = p
	p.state = Running
	n.st.Proc.CtxSwitches++
	if !p.started {
		p.start()
		return
	}
	p.fiber.Unpark()
}

// wakeNull resumes the null process if it is parked waiting for idleness.
func (n *Node) wakeNull() {
	if n.nullParked {
		n.nullParked = false
		n.nullFiber.Unpark()
	}
}

// startNull launches the node's null process: it runs when no ready
// process exists, performing the passive load-balancing timeout loop.
// (The outgoing-channel retransmission check the paper also assigns to
// the null process is modelled by the endpoint's periodic timer.)
func (n *Node) startNull() {
	n.nullFiber = n.eng.Go(fmt.Sprintf("null%d", n.id), func(f *sim.Fiber) {
		for !n.stopped {
			if n.current != nil || len(n.ready) > 0 {
				n.nullParked = true
				f.Park("idle (null process)")
				continue
			}
			// A zero interval would re-run this loop at one frozen
			// virtual instant forever; under a host-time driver that
			// starves externally injected events, which land at the
			// driver's (advancing) clock. Sleep a real duration.
			iv := n.bal.Interval
			if iv <= 0 {
				iv = 10 * time.Millisecond
			}
			f.Sleep(iv)
			if n.stopped || n.current != nil || len(n.ready) > 0 {
				continue
			}
			if n.bal.Enabled {
				n.balanceOnce(f)
			}
			if n.bal.PCBGC {
				n.collectOnce(f)
			}
			if n.bal.HintPeriod > 0 && f.Now().Sub(n.lastHint) >= n.bal.HintPeriod {
				n.lastHint = f.Now()
				n.ep.BroadcastNoReply(&wire.WorkReq{Load: n.LoadHint()})
			}
		}
	})
}

// balanceOnce is one round of the passive algorithm: when this node's
// process count is below the low threshold, ask the most loaded peer
// per the piggybacked hints. The hints exist to minimize rejections;
// when none exceeds the high threshold (a quiet ring carries no
// piggybacked bytes), the idle node still probes peers round-robin and
// eats the occasional rejection.
func (n *Node) balanceOnce(f *sim.Fiber) {
	if n.counted >= n.bal.LowThreshold {
		return
	}
	size := n.ep.ClusterSize()
	if size <= 1 {
		return
	}
	best := ring.NodeID(-1)
	bestLoad := uint8(0)
	for i := 0; i < size; i++ {
		id := ring.NodeID(i)
		if id == n.id {
			continue
		}
		if h := n.ep.LoadHintOf(id); int(h) > n.bal.HighThreshold && h > bestLoad {
			best, bestLoad = id, h
		}
	}
	if best < 0 {
		// No informative hint: probe the next peer in rotation.
		n.probeNext = (n.probeNext + 1) % size
		if ring.NodeID(n.probeNext) == n.id {
			n.probeNext = (n.probeNext + 1) % size
		}
		best = ring.NodeID(n.probeNext)
	}
	n.st.Proc.WorkRequests++
	// The reply both answers the request and piggybacks the peer's load
	// hint, refreshing this node's view either way.
	_, _ = n.ep.Call(f, best, &wire.WorkReq{Load: n.LoadHint()})
}
