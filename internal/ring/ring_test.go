package ring

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func testCosts() model.Costs {
	c := model.Default1988()
	c.WireLatency = time.Millisecond
	c.WireBytePeriod = time.Microsecond
	return c
}

func TestPointToPointDelivery(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 3)
	var got *Packet
	var at sim.Time
	nw.Attach(1, func(p *Packet) { got = p; at = eng.Now() })
	nw.Attach(0, func(p *Packet) { t.Error("misdelivered to 0") })
	nw.Attach(2, func(p *Packet) { t.Error("misdelivered to 2") })

	payload := make([]byte, 100)
	nw.Send(&Packet{Src: 0, Dst: 1, Payload: payload})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	want := sim.Time(time.Millisecond + 100*time.Microsecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSharedMediumSerializes(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 2)
	var times []sim.Time
	nw.Attach(1, func(p *Packet) { times = append(times, eng.Now()) })
	nw.Attach(0, func(p *Packet) {})

	// Two 1000-byte packets sent at the same instant must serialize on
	// the wire: second arrives one full transmission later.
	for i := 0; i < 2; i++ {
		nw.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 1000)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	per := time.Millisecond + 1000*time.Microsecond
	if times[0] != sim.Time(per) || times[1] != sim.Time(2*per) {
		t.Fatalf("delivery times %v, want [%v %v]", times, per, 2*per)
	}
}

func TestBroadcastReachesAllButSource(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 4)
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		nw.Attach(NodeID(i), func(p *Packet) { got[i]++ })
	}
	nw.Send(&Packet{Src: 2, Dst: Broadcast, Payload: []byte{1}})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range got {
		want := 1
		if i == 2 {
			want = 0
		}
		if n != want {
			t.Fatalf("station %d received %d, want %d", i, n, want)
		}
	}
	if s := nw.Stats(); s.Packets != 1 || s.Delivered != 3 {
		t.Fatalf("stats = %+v, want 1 packet / 3 deliveries", s)
	}
}

func TestLossInjectionDropsDeterministically(t *testing.T) {
	run := func() Stats {
		eng := sim.New(99)
		nw := New(eng, testCosts(), 2)
		nw.Attach(0, func(p *Packet) {})
		nw.Attach(1, func(p *Packet) {})
		nw.SetLossProbability(0.5)
		for i := 0; i < 200; i++ {
			nw.Send(&Packet{Src: 0, Dst: 1, Payload: []byte{byte(i)}})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return nw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different loss patterns: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Delivered == 0 {
		t.Fatalf("expected both drops and deliveries at p=0.5: %+v", a)
	}
	if a.Dropped+a.Delivered != 200 {
		t.Fatalf("drops+deliveries = %d, want 200", a.Dropped+a.Delivered)
	}
}

func TestSelfAddressedRingsBack(t *testing.T) {
	// A frame addressed to its own sender circulates the ring and comes
	// back, paying full wire time — the remote-operation layer relies on
	// this when a forwarding chain chases a migrated process back to the
	// request's originator.
	eng := sim.New(1)
	nw := New(eng, testCosts(), 2)
	var at sim.Time
	delivered := 0
	nw.Attach(0, func(p *Packet) { delivered++; at = eng.Now() })
	nw.Attach(1, func(p *Packet) { t.Error("misdelivered to 1") })

	nw.Send(&Packet{Src: 0, Dst: 0, Payload: make([]byte, 100)})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1", delivered)
	}
	if want := sim.Time(time.Millisecond + 100*time.Microsecond); at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSendValidation(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 2)
	cases := []Packet{
		{Src: -1, Dst: 1}, // bad source
		{Src: 0, Dst: 5},  // bad destination
	}
	for _, pkt := range cases {
		pkt := pkt
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send(%+v) did not panic", pkt)
				}
			}()
			nw.Send(&pkt)
		}()
	}
}

func TestLargePacketsNotMuchMoreExpensive(t *testing.T) {
	// The paper's premise: on this network, sending ~1000 bytes is "not
	// much more expensive" than ~100 bytes, because fixed overhead
	// dominates. Verify the cost model preserves that ratio (< 2x) at the
	// default calibration.
	c := model.Default1988()
	small := c.PacketTime(100)
	large := c.PacketTime(1000)
	if ratio := float64(large) / float64(small); ratio > 2.0 {
		t.Fatalf("1000B/100B packet cost ratio = %.2f, want < 2 (fixed overhead should dominate)", ratio)
	}
}

// Property: total bytes and packets accounted match what was sent, for
// arbitrary payload sizes.
func TestPropertyStatsAccounting(t *testing.T) {
	prop := func(sizes []uint8) bool {
		eng := sim.New(1)
		nw := New(eng, testCosts(), 2)
		nw.Attach(0, func(p *Packet) {})
		nw.Attach(1, func(p *Packet) {})
		var bytes uint64
		for _, s := range sizes {
			nw.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, int(s))})
			bytes += uint64(s)
		}
		if err := eng.Run(); err != nil {
			return false
		}
		st := nw.Stats()
		return st.Packets == uint64(len(sizes)) && st.Bytes == bytes &&
			st.Delivered == uint64(len(sizes))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
