package ring

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// payloadOf builds an n-byte payload whose first byte classifies as k —
// the same shape wire.Envelope.MarshalInto produces.
func payloadOf(k wire.Kind, n int) []byte {
	p := make([]byte, n)
	p[0] = byte(k)
	return p
}

func TestPerKindAccounting(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 3)
	for i := 0; i < 3; i++ {
		nw.Attach(NodeID(i), func(p *Packet) {})
	}

	// Two read-fault requests from node 0, one page reply from node 1,
	// and one malformed (out-of-range first byte) packet from node 2.
	nw.Send(&Packet{Src: 0, Dst: 1, Payload: payloadOf(wire.KindReadFaultReq, 15)})
	nw.Send(&Packet{Src: 0, Dst: 1, Payload: payloadOf(wire.KindReadFaultReq, 15)})
	nw.Send(&Packet{Src: 1, Dst: 0, Payload: payloadOf(wire.KindPageReadReply, 1040)})
	nw.Send(&Packet{Src: 2, Dst: 0, Payload: []byte{0xFF, 1, 2}})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	st := nw.Stats()
	if got := st.Kinds[wire.KindReadFaultReq]; got.Packets != 2 || got.Bytes != 30 {
		t.Fatalf("ReadFaultReq = %+v, want 2 packets / 30 bytes", got)
	}
	if got := st.Kinds[wire.KindPageReadReply]; got.Packets != 1 || got.Bytes != 1040 {
		t.Fatalf("PageReadReply = %+v, want 1 packet / 1040 bytes", got)
	}
	if got := st.Kinds[wire.KindInvalid]; got.Packets != 1 || got.Bytes != 3 {
		t.Fatalf("Invalid = %+v, want 1 packet / 3 bytes", got)
	}

	// The per-kind buckets must partition the aggregate counters.
	var packets, bytes uint64
	for _, k := range st.Kinds {
		packets += k.Packets
		bytes += k.Bytes
	}
	if packets != st.Packets || bytes != st.Bytes {
		t.Fatalf("kind sums %d/%d, aggregate %d/%d", packets, bytes, st.Packets, st.Bytes)
	}

	// Transmissions split by sending station.
	nk := nw.NodeKinds()
	if nk[0][wire.KindReadFaultReq].Packets != 2 {
		t.Fatalf("node 0 ReadFaultReq = %+v, want 2 packets", nk[0][wire.KindReadFaultReq])
	}
	if nk[1][wire.KindPageReadReply].Packets != 1 {
		t.Fatalf("node 1 PageReadReply = %+v, want 1 packet", nk[1][wire.KindPageReadReply])
	}
	if nk[2][wire.KindInvalid].Packets != 1 {
		t.Fatalf("node 2 Invalid = %+v, want 1 packet", nk[2][wire.KindInvalid])
	}
}

func TestPerKindDropAccounting(t *testing.T) {
	eng := sim.New(7)
	nw := New(eng, testCosts(), 2)
	nw.Attach(0, func(p *Packet) {})
	nw.Attach(1, func(p *Packet) {})
	nw.SetLossProbability(1) // every delivery attempt drops

	nw.Send(&Packet{Src: 0, Dst: 1, Payload: payloadOf(wire.KindInvalidateReq, 17)})
	nw.Send(&Packet{Src: 0, Dst: 1, Payload: payloadOf(wire.KindInvalidateReq, 17)})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	st := nw.Stats()
	if got := st.Kinds[wire.KindInvalidateReq]; got.Packets != 2 || got.Drops != 2 {
		t.Fatalf("InvalidateReq = %+v, want 2 packets / 2 drops", got)
	}
	var drops uint64
	for _, k := range st.Kinds {
		drops += k.Drops
	}
	if drops != st.Dropped {
		t.Fatalf("kind drop sum %d, aggregate Dropped %d", drops, st.Dropped)
	}
}
