package ring

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// scriptedInjector returns one pre-programmed Fault per delivery, in
// order, then clean deliveries.
type scriptedInjector struct {
	faults []Fault
	next   int
}

func (s *scriptedInjector) Deliver(src, dst NodeID, broadcast bool, size int) Fault {
	if s.next >= len(s.faults) {
		return Fault{}
	}
	f := s.faults[s.next]
	s.next++
	return f
}

// TestInjectorAccountingExact is the regression test for fault-plane
// delivery accounting: with duplication and drops in play, every
// per-receiver delivery attempt lands in exactly one of Delivered or
// Dropped, duplicates are attempts of their own, and Packets still
// counts transmissions (not fanout).
func TestInjectorAccountingExact(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 3)
	got := make(map[NodeID]int)
	for i := NodeID(0); i < 3; i++ {
		i := i
		nw.Attach(i, func(p *Packet) { got[i]++ })
	}
	inj := &scriptedInjector{faults: []Fault{
		{},                      // p2p clean
		{Drop: true},            // p2p dropped
		{Dup: true},             // p2p duplicated: 2 attempts, 2 delivered
		{Dup: true, Drop: true}, // duplicate delivered, original dropped
		{Delay: time.Second},    // delayed but delivered
		{},                      // broadcast to node 1: clean
		{Drop: true},            // broadcast to node 2: dropped
	}}
	nw.SetInjector(inj)

	for i := 0; i < 5; i++ {
		nw.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 10)})
	}
	nw.Send(&Packet{Src: 0, Dst: Broadcast, Payload: make([]byte, 10)})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	st := nw.Stats()
	// 5 p2p sends + 1 broadcast = 6 transmissions on the wire.
	if st.Packets != 6 {
		t.Errorf("Packets = %d, want 6", st.Packets)
	}
	// Attempts: p2p clean 1, dropped 1, dup 2, dup+drop 2, delayed 1,
	// broadcast fanout 2 = 9.
	if st.Attempts != 9 {
		t.Errorf("Attempts = %d, want 9", st.Attempts)
	}
	if st.Delivered != 6 {
		t.Errorf("Delivered = %d, want 6", st.Delivered)
	}
	if st.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", st.Dropped)
	}
	if st.Attempts != st.Delivered+st.Dropped {
		t.Errorf("Attempts (%d) != Delivered (%d) + Dropped (%d)",
			st.Attempts, st.Delivered, st.Dropped)
	}
	if st.Duplicated != 2 {
		t.Errorf("Duplicated = %d, want 2", st.Duplicated)
	}
	if st.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", st.Delayed)
	}
	// Node 1 receives: clean, dup original+copy, dup copy (original
	// dropped), delayed, broadcast = 6.
	if got[1] != 6 {
		t.Errorf("node 1 received %d, want 6", got[1])
	}
	if got[2] != 0 {
		t.Errorf("node 2 received %d, want 0 (its broadcast copy dropped)", got[2])
	}
}

// TestBroadcastFaultsNeverDelay: the protocol's broadcast-atomicity
// gates require every receiver to see a broadcast in the same engine
// step, so the fault plane may drop a broadcast copy but never delay
// it — even if an injector asks.
func TestBroadcastFaultsNeverDelay(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 3)
	times := make(map[NodeID]sim.Time)
	for i := NodeID(1); i < 3; i++ {
		i := i
		nw.Attach(i, func(p *Packet) { times[i] = eng.Now() })
	}
	nw.Attach(0, func(p *Packet) {})
	inj := &scriptedInjector{faults: []Fault{
		{Delay: time.Second, Dup: true, DupDelay: time.Second}, // must be ignored for a broadcast
		{},
	}}
	nw.SetInjector(inj)
	nw.Send(&Packet{Src: 0, Dst: Broadcast, Payload: make([]byte, 10)})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if times[1] == 0 || times[1] != times[2] {
		t.Fatalf("broadcast receivers saw different times: %v", times)
	}
	if st := nw.Stats(); st.Delayed != 0 {
		t.Errorf("broadcast delivery recorded a delay: %+v", st)
	}
}

// TestDownNodeAccounting: a down receiver drops everything addressed to
// it (DownDrops, inside Dropped), and a down sender's transmissions are
// suppressed before they cost wire time.
func TestDownNodeAccounting(t *testing.T) {
	eng := sim.New(1)
	nw := New(eng, testCosts(), 2)
	rx := 0
	nw.Attach(0, func(p *Packet) { rx++ })
	nw.Attach(1, func(p *Packet) { rx++ })

	nw.SetNodeDown(1, true)
	nw.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 10)}) // dropped at RX
	nw.Send(&Packet{Src: 1, Dst: 0, Payload: make([]byte, 10)}) // suppressed at TX
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if rx != 0 {
		t.Fatalf("a down node's traffic was delivered (%d packets)", rx)
	}
	if st.DownDrops != 1 || st.Dropped != 1 {
		t.Errorf("DownDrops = %d, Dropped = %d, want 1, 1", st.DownDrops, st.Dropped)
	}
	if st.TxSuppressed != 1 {
		t.Errorf("TxSuppressed = %d, want 1", st.TxSuppressed)
	}
	// The suppressed TX must not have held the wire: only the first
	// send's bytes count.
	if st.Packets != 1 || st.Bytes != 10 {
		t.Errorf("Packets = %d, Bytes = %d; suppressed send reached the wire", st.Packets, st.Bytes)
	}

	// After rejoin, traffic flows again.
	nw.SetNodeDown(1, false)
	nw.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 10)})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rx != 1 {
		t.Fatalf("delivery after rejoin = %d packets, want 1", rx)
	}
}

// TestInjectorComposesWithLossProbability: the legacy per-receiver loss
// knob still applies downstream of the injector, and the shared
// accounting invariant holds.
func TestInjectorComposesWithLossProbability(t *testing.T) {
	eng := sim.New(7)
	nw := New(eng, testCosts(), 2)
	nw.Attach(0, func(p *Packet) {})
	delivered := 0
	nw.Attach(1, func(p *Packet) { delivered++ })
	nw.SetLossProbability(0.5)
	nw.SetInjector(&scriptedInjector{faults: []Fault{{Dup: true}, {Dup: true}}})
	for i := 0; i < 20; i++ {
		nw.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 10)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Attempts != 22 { // 20 sends + 2 duplicates
		t.Errorf("Attempts = %d, want 22", st.Attempts)
	}
	if st.Attempts != st.Delivered+st.Dropped {
		t.Errorf("Attempts (%d) != Delivered (%d) + Dropped (%d)",
			st.Attempts, st.Delivered, st.Dropped)
	}
	if uint64(delivered) != st.Delivered {
		t.Errorf("handler saw %d, stats say %d", delivered, st.Delivered)
	}
	if st.Delivered == 22 || st.Delivered == 0 {
		t.Errorf("loss probability had no effect: Delivered = %d", st.Delivered)
	}
}
