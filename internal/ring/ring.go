// Package ring models the interconnect of the simulated cluster: a
// baseband, single token ring (12 Mbit/s in the Apollo Domain system IVY
// ran on). The ring is a shared medium — one packet is on the wire at a
// time — so transmissions serialize, which is what bounds communication-
// heavy workloads such as the paper's dot-product benchmark.
//
// The model supports point-to-point sends and true broadcast (a single
// wire transmission seen by every station), plus seeded packet-loss
// injection so the remote-operation layer's retransmission protocol can be
// exercised deterministically.
package ring

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// NodeID identifies a station on the ring. Valid IDs are 0..N-1.
type NodeID int

// Broadcast is the destination pseudo-ID for packets addressed to every
// other station.
const Broadcast NodeID = -1

// Packet is one frame on the ring. Payload is an encoded message from
// internal/wire; the network only looks at its length.
type Packet struct {
	Src     NodeID
	Dst     NodeID // Broadcast for all stations except Src; Dst == Src rings back to the sender
	Payload []byte

	// Trace is the span ID of the fault this packet serves (0 =
	// untraced). It is simulator metadata, not part of the frame: it
	// does not contribute to PacketTime, so enabling tracing never
	// changes virtual timings.
	Trace uint64
}

// Handler receives delivered packets in engine context. Handlers must not
// block; long work should be handed to a fiber.
type Handler func(*Packet)

// Fault is an Injector's per-attempt decision. Drop loses this delivery
// attempt; Delay postpones it by the given jitter; Dup schedules a second
// copy of the frame DupDelay after the transmission ends. Drop and Delay
// apply to the primary copy only — a duplicate, once scheduled, is
// delivered unless the receiver is down (or legacy loss takes it).
type Fault struct {
	Drop     bool
	Delay    time.Duration
	Dup      bool
	DupDelay time.Duration
}

// Injector decides the fate of each per-receiver delivery attempt. It is
// consulted once per receiver per transmission, in engine context, and
// must draw any randomness from the engine's seeded source so fault
// schedules replay bit-for-bit. broadcast reports whether the frame is a
// broadcast: implementations must not delay broadcast copies (a token-
// ring broadcast reaches every station in one rotation, and the
// coherence gates rely on that atomicity).
type Injector interface {
	Deliver(src, dst NodeID, broadcast bool, size int) Fault
}

// KindStats is the per-message-kind slice of the traffic accounting:
// transmissions and payload bytes put on the wire, plus the per-receiver
// delivery attempts the loss machinery (legacy loss, the chaos fault
// plane, down stations) dropped. Indexed by wire.Kind — a fixed-size
// array, never a map, so snapshots copy by value and iteration order is
// the kind order itself.
type KindStats struct {
	Packets uint64 // transmissions of this kind (a broadcast counts once)
	Bytes   uint64 // payload bytes transmitted
	Drops   uint64 // per-receiver delivery attempts lost (incl. chaos-plane and down-station drops)
}

// Stats aggregates traffic counters for the whole ring. The per-receiver
// accounting is exact: Attempts = Delivered + Dropped always, where
// Attempts counts every delivery attempt (the per-receiver fan-out of
// each transmission plus every injected duplicate) and DownDrops is the
// subset of Dropped addressed to crashed stations.
type Stats struct {
	Packets      uint64 // transmissions (a broadcast counts once)
	Bytes        uint64 // payload bytes transmitted
	Attempts     uint64 // per-receiver delivery attempts (incl. duplicates)
	Delivered    uint64 // successful per-receiver deliveries
	Dropped      uint64 // per-receiver losses (injected, burst, or down)
	DownDrops    uint64 // subset of Dropped: receiver was down
	Duplicated   uint64 // extra copies scheduled by the injector
	Delayed      uint64 // deliveries postponed by injected jitter
	TxSuppressed uint64 // transmissions swallowed because the sender is down
	WireBusy     time.Duration

	// Kinds splits Packets/Bytes/Dropped by message kind (the first byte
	// of every encoded envelope). Sum over Kinds matches the aggregate
	// counters: every transmission and every drop lands in exactly one
	// bucket (malformed payloads land in KindInvalid).
	Kinds [wire.NumKinds]KindStats
}

// Transport is the interconnect surface the protocol layers (remop and
// everything above it) program against: attach a per-station delivery
// handler, send point-to-point or broadcast frames, read the exact
// traffic accounting, and mark stations down (the hook the crash plane
// and a real backend's link-failure detection both use). Two backends
// implement it — *Network, the deterministic simulated token ring, and
// tcpnet.Net, which carries the same closed wire vocabulary over real
// TCP connections between processes. Protocol code must not assume which
// backend it runs on; sim-only features (loss injection, fault
// injectors, span tracing) stay on the concrete *Network.
type Transport interface {
	// Size returns the cluster size (number of stations).
	Size() int
	// Attach registers the delivery handler for station id. A backend
	// that hosts a single station still accepts only its own id.
	Attach(id NodeID, h Handler)
	// Send transmits pkt without blocking the caller; delivery invokes
	// the destination's handler in engine context. Dst == Broadcast
	// reaches every station except the sender.
	Send(pkt *Packet)
	// Stats returns a snapshot of the traffic counters. Every backend
	// maintains the exact per-attempt accounting invariant
	// Attempts == Delivered + Dropped.
	Stats() Stats
	// NodeKinds returns the per-station per-kind transmission counters.
	NodeKinds() [][wire.NumKinds]KindStats
	// SetNodeDown marks station id crashed or recovered: frames to and
	// from a down station are dropped.
	SetNodeDown(id NodeID, isDown bool)
	// Close releases host resources (sockets, goroutines). The simulated
	// ring holds none; real backends shut down their connections.
	Close() error
}

// The simulated ring is a Transport (satellite audit: concrete callers
// go through this interface; sim-only hooks stay on *Network).
var _ Transport = (*Network)(nil)

// Network is the simulated token ring.
type Network struct {
	eng      *sim.Engine
	costs    model.Costs
	handlers []Handler
	lossProb float64

	// inj, when non-nil, is consulted for every delivery attempt; down
	// marks crashed stations (frames to and from them vanish). Both nil
	// by default, costing nothing.
	inj  Injector
	down []bool

	// busyUntil serializes the shared medium: a transmission begins when
	// the wire frees up and the sender's packet reaches the token.
	busyUntil sim.Time

	stats Stats
	// nodeKinds splits the per-kind accounting by sending station, so
	// manager-protocol overhead is attributable to the node that put the
	// bytes on the wire. Sized at New; drops stay cluster-wide (a drop
	// belongs to a receiver attempt, not a sender).
	nodeKinds [][wire.NumKinds]KindStats
	trc       *trace.Collector
}

// New creates a ring with n stations using the given cost model. Stations
// must attach handlers with Attach before any packet addressed to them is
// delivered.
func New(eng *sim.Engine, costs model.Costs, n int) *Network {
	if n <= 0 {
		panic("ring: network needs at least one station")
	}
	return &Network{
		eng:       eng,
		costs:     costs,
		handlers:  make([]Handler, n),
		nodeKinds: make([][wire.NumKinds]KindStats, n),
	}
}

// Size returns the number of stations.
func (nw *Network) Size() int { return len(nw.handlers) }

// Attach registers the delivery handler for station id.
func (nw *Network) Attach(id NodeID, h Handler) {
	nw.handlers[id] = h
}

// SetLossProbability makes each per-receiver delivery fail independently
// with probability p, using the engine's seeded random source. Used by
// tests and failure-injection experiments; the default is 0.
func (nw *Network) SetLossProbability(p float64) {
	if p < 0 || p > 1 {
		panic("ring: loss probability out of range")
	}
	nw.lossProb = p
}

// SetInjector installs (or, with nil, removes) a fault injector. With no
// injector the delivery path is unchanged and consumes no randomness.
func (nw *Network) SetInjector(inj Injector) { nw.inj = inj }

// SetNodeDown marks station id as crashed (down=true) or recovered. A down
// station's NIC is dead both ways: its transmissions are swallowed before
// they reach the wire and frames addressed to it are dropped on delivery.
func (nw *Network) SetNodeDown(id NodeID, isDown bool) {
	if nw.down == nil {
		nw.down = make([]bool, len(nw.handlers))
	}
	nw.down[id] = isDown
}

// nodeDown reports whether station id is currently crashed.
func (nw *Network) nodeDown(id NodeID) bool {
	return nw.down != nil && nw.down[id]
}

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }

// NodeKinds returns a snapshot of the per-station per-kind transmission
// counters, indexed [station][kind]. Drops are not split by station;
// see Stats.Kinds for the cluster-wide drop accounting.
func (nw *Network) NodeKinds() [][wire.NumKinds]KindStats {
	out := make([][wire.NumKinds]KindStats, len(nw.nodeKinds))
	copy(out, nw.nodeKinds)
	return out
}

// SetTracer installs a span collector. Traced packets (Trace != 0) get a
// wire span from transmission start to delivery.
func (nw *Network) SetTracer(c *trace.Collector) { nw.trc = c }

// Close implements Transport. The simulated ring owns no host resources,
// so there is nothing to release.
func (nw *Network) Close() error { return nil }

// BusyUntil returns the virtual time through which the wire is reserved —
// the sampler derives ring utilization from the WireBusy counter, and
// diagnostics can compare this against now.
func (nw *Network) BusyUntil() sim.Time { return nw.busyUntil }

// Send transmits pkt. The sender does not block: the call reserves wire
// time and schedules delivery; waiting for replies is the caller's
// protocol concern. Delivery order is deterministic.
func (nw *Network) Send(pkt *Packet) {
	if pkt.Src < 0 || int(pkt.Src) >= len(nw.handlers) {
		panic(fmt.Sprintf("ring: bad source %d", pkt.Src))
	}
	if pkt.Dst != Broadcast && (pkt.Dst < 0 || int(pkt.Dst) >= len(nw.handlers)) {
		panic(fmt.Sprintf("ring: bad destination %d", pkt.Dst))
	}
	// Dst == Src is legal: on a token ring a self-addressed frame simply
	// circulates the ring back to its sender, paying full wire time. The
	// remote-operation layer produces such frames when a forwarding chain
	// chases a migrated process back to the node that originated the
	// request — the final hop then replies to itself over the wire.

	// A crashed sender's frames never reach the wire: no wire time is
	// reserved and no receiver sees anything. This models the NIC going
	// dark, not a half-transmitted frame.
	if nw.nodeDown(pkt.Src) {
		nw.stats.TxSuppressed++
		return
	}

	wire := nw.costs.PacketTime(len(pkt.Payload))
	start := nw.eng.Now()
	if nw.busyUntil > start {
		start = nw.busyUntil
	}
	end := start.Add(wire)
	nw.busyUntil = end
	nw.stats.Packets++
	nw.stats.Bytes += uint64(len(pkt.Payload))
	nw.stats.WireBusy += wire
	k := wireKind(pkt)
	nw.stats.Kinds[k].Packets++
	nw.stats.Kinds[k].Bytes += uint64(len(pkt.Payload))
	nw.nodeKinds[pkt.Src][k].Packets++
	nw.nodeKinds[pkt.Src][k].Bytes += uint64(len(pkt.Payload))

	if nw.trc != nil && pkt.Trace != 0 {
		dst := "broadcast"
		if pkt.Dst != Broadcast {
			dst = fmt.Sprintf("→node%d", pkt.Dst)
		}
		span := nw.trc.BeginAt(start.Duration(), int(pkt.Src), trace.PhaseWire,
			trace.SpanID(pkt.Trace), trace.NoPage, fmt.Sprintf("%dB %s", len(pkt.Payload), dst))
		nw.eng.ScheduleAt(end, func() {
			nw.trc.End(span)
			nw.deliver(pkt)
		})
		return
	}
	nw.eng.ScheduleAt(end, func() { nw.deliver(pkt) })
}

// deliver hands the packet to its receiver(s), applying loss injection
// per receiver. Runs in engine context at the end of the transmission.
func (nw *Network) deliver(pkt *Packet) {
	if pkt.Dst != Broadcast {
		nw.deliverTo(pkt.Dst, pkt)
		return
	}
	for id := range nw.handlers {
		if NodeID(id) == pkt.Src {
			continue
		}
		nw.deliverTo(NodeID(id), pkt)
	}
}

// deliverTo is one per-receiver delivery attempt. The injector (if any) is
// consulted exactly once per attempt; a duplicate it requests becomes a
// fresh attempt through finishDeliver, so Attempts = Delivered + Dropped
// stays exact even when copies multiply. Broadcast frames are never
// delayed — each station's copy lands in the same engine step as the
// transmission end, preserving the one-rotation atomicity the coherence
// delivery gates depend on (injectors are told broadcast and must return
// zero delays; this is also enforced here).
func (nw *Network) deliverTo(id NodeID, pkt *Packet) {
	if nw.inj != nil {
		f := nw.inj.Deliver(pkt.Src, id, pkt.Dst == Broadcast, len(pkt.Payload))
		if pkt.Dst == Broadcast {
			f.Delay, f.DupDelay = 0, 0
		}
		if f.Dup {
			nw.stats.Duplicated++
			if f.DupDelay > 0 {
				nw.eng.Schedule(f.DupDelay, func() { nw.finishDeliver(id, pkt) })
			} else {
				nw.finishDeliver(id, pkt)
			}
		}
		switch {
		case f.Drop:
			nw.stats.Attempts++
			nw.stats.Dropped++
			nw.stats.Kinds[wireKind(pkt)].Drops++
			return
		case f.Delay > 0:
			nw.stats.Delayed++
			nw.eng.Schedule(f.Delay, func() { nw.finishDeliver(id, pkt) })
			return
		}
	}
	nw.finishDeliver(id, pkt)
}

// wireKind classifies a packet for the per-kind accounting: the kind is
// the first payload byte (see wire.Envelope.MarshalInto), so no decode
// is needed. A helper rather than an inline call because Send's local
// `wire` duration shadows the package name.
func wireKind(pkt *Packet) wire.Kind { return wire.KindOfPayload(pkt.Payload) }

// finishDeliver lands one delivery attempt at its receiver: down-station
// drop, then legacy independent loss, then the handler.
func (nw *Network) finishDeliver(id NodeID, pkt *Packet) {
	nw.stats.Attempts++
	if nw.nodeDown(id) {
		nw.stats.DownDrops++
		nw.stats.Dropped++
		nw.stats.Kinds[wireKind(pkt)].Drops++
		return
	}
	if nw.lossProb > 0 && nw.eng.Rand().Float64() < nw.lossProb {
		nw.stats.Dropped++
		nw.stats.Kinds[wireKind(pkt)].Drops++
		return
	}
	h := nw.handlers[id]
	if h == nil {
		panic(fmt.Sprintf("ring: station %d has no handler attached", id))
	}
	nw.stats.Delivered++
	h(pkt)
}
