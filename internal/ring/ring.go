// Package ring models the interconnect of the simulated cluster: a
// baseband, single token ring (12 Mbit/s in the Apollo Domain system IVY
// ran on). The ring is a shared medium — one packet is on the wire at a
// time — so transmissions serialize, which is what bounds communication-
// heavy workloads such as the paper's dot-product benchmark.
//
// The model supports point-to-point sends and true broadcast (a single
// wire transmission seen by every station), plus seeded packet-loss
// injection so the remote-operation layer's retransmission protocol can be
// exercised deterministically.
package ring

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// NodeID identifies a station on the ring. Valid IDs are 0..N-1.
type NodeID int

// Broadcast is the destination pseudo-ID for packets addressed to every
// other station.
const Broadcast NodeID = -1

// Packet is one frame on the ring. Payload is an encoded message from
// internal/wire; the network only looks at its length.
type Packet struct {
	Src     NodeID
	Dst     NodeID // Broadcast for all stations except Src; Dst == Src rings back to the sender
	Payload []byte

	// Trace is the span ID of the fault this packet serves (0 =
	// untraced). It is simulator metadata, not part of the frame: it
	// does not contribute to PacketTime, so enabling tracing never
	// changes virtual timings.
	Trace uint64
}

// Handler receives delivered packets in engine context. Handlers must not
// block; long work should be handed to a fiber.
type Handler func(*Packet)

// Stats aggregates traffic counters for the whole ring.
type Stats struct {
	Packets   uint64 // transmissions (a broadcast counts once)
	Bytes     uint64 // payload bytes transmitted
	Delivered uint64 // successful per-receiver deliveries
	Dropped   uint64 // per-receiver losses injected
	WireBusy  time.Duration
}

// Network is the simulated token ring.
type Network struct {
	eng      *sim.Engine
	costs    model.Costs
	handlers []Handler
	lossProb float64

	// busyUntil serializes the shared medium: a transmission begins when
	// the wire frees up and the sender's packet reaches the token.
	busyUntil sim.Time

	stats Stats
	trc   *trace.Collector
}

// New creates a ring with n stations using the given cost model. Stations
// must attach handlers with Attach before any packet addressed to them is
// delivered.
func New(eng *sim.Engine, costs model.Costs, n int) *Network {
	if n <= 0 {
		panic("ring: network needs at least one station")
	}
	return &Network{eng: eng, costs: costs, handlers: make([]Handler, n)}
}

// Size returns the number of stations.
func (nw *Network) Size() int { return len(nw.handlers) }

// Attach registers the delivery handler for station id.
func (nw *Network) Attach(id NodeID, h Handler) {
	nw.handlers[id] = h
}

// SetLossProbability makes each per-receiver delivery fail independently
// with probability p, using the engine's seeded random source. Used by
// tests and failure-injection experiments; the default is 0.
func (nw *Network) SetLossProbability(p float64) {
	if p < 0 || p > 1 {
		panic("ring: loss probability out of range")
	}
	nw.lossProb = p
}

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }

// SetTracer installs a span collector. Traced packets (Trace != 0) get a
// wire span from transmission start to delivery.
func (nw *Network) SetTracer(c *trace.Collector) { nw.trc = c }

// BusyUntil returns the virtual time through which the wire is reserved —
// the sampler derives ring utilization from the WireBusy counter, and
// diagnostics can compare this against now.
func (nw *Network) BusyUntil() sim.Time { return nw.busyUntil }

// Send transmits pkt. The sender does not block: the call reserves wire
// time and schedules delivery; waiting for replies is the caller's
// protocol concern. Delivery order is deterministic.
func (nw *Network) Send(pkt *Packet) {
	if pkt.Src < 0 || int(pkt.Src) >= len(nw.handlers) {
		panic(fmt.Sprintf("ring: bad source %d", pkt.Src))
	}
	if pkt.Dst != Broadcast && (pkt.Dst < 0 || int(pkt.Dst) >= len(nw.handlers)) {
		panic(fmt.Sprintf("ring: bad destination %d", pkt.Dst))
	}
	// Dst == Src is legal: on a token ring a self-addressed frame simply
	// circulates the ring back to its sender, paying full wire time. The
	// remote-operation layer produces such frames when a forwarding chain
	// chases a migrated process back to the node that originated the
	// request — the final hop then replies to itself over the wire.

	wire := nw.costs.PacketTime(len(pkt.Payload))
	start := nw.eng.Now()
	if nw.busyUntil > start {
		start = nw.busyUntil
	}
	end := start.Add(wire)
	nw.busyUntil = end
	nw.stats.Packets++
	nw.stats.Bytes += uint64(len(pkt.Payload))
	nw.stats.WireBusy += wire

	if nw.trc != nil && pkt.Trace != 0 {
		dst := "broadcast"
		if pkt.Dst != Broadcast {
			dst = fmt.Sprintf("→node%d", pkt.Dst)
		}
		span := nw.trc.BeginAt(start.Duration(), int(pkt.Src), trace.PhaseWire,
			trace.SpanID(pkt.Trace), trace.NoPage, fmt.Sprintf("%dB %s", len(pkt.Payload), dst))
		nw.eng.ScheduleAt(end, func() {
			nw.trc.End(span)
			nw.deliver(pkt)
		})
		return
	}
	nw.eng.ScheduleAt(end, func() { nw.deliver(pkt) })
}

// deliver hands the packet to its receiver(s), applying loss injection
// per receiver. Runs in engine context at the end of the transmission.
func (nw *Network) deliver(pkt *Packet) {
	if pkt.Dst != Broadcast {
		nw.deliverTo(pkt.Dst, pkt)
		return
	}
	for id := range nw.handlers {
		if NodeID(id) == pkt.Src {
			continue
		}
		nw.deliverTo(NodeID(id), pkt)
	}
}

func (nw *Network) deliverTo(id NodeID, pkt *Packet) {
	if nw.lossProb > 0 && nw.eng.Rand().Float64() < nw.lossProb {
		nw.stats.Dropped++
		return
	}
	h := nw.handlers[id]
	if h == nil {
		panic(fmt.Sprintf("ring: station %d has no handler attached", id))
	}
	nw.stats.Delivered++
	h(pkt)
}
