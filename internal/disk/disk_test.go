package disk

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	eng := sim.New(1)
	costs := model.Default1988()
	d := New(costs)
	eng.Go("t", func(f *sim.Fiber) {
		data := []byte{1, 2, 3, 4}
		d.Write(f, 7, data)
		data[0] = 99 // caller's buffer must not alias the store
		got := d.Read(f, 7)
		if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
			t.Errorf("Read = %v", got)
		}
		got[1] = 99 // returned buffer must not alias the store either
		if again := d.Read(f, 7); !bytes.Equal(again, []byte{1, 2, 3, 4}) {
			t.Errorf("store aliased: %v", again)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Reads() != 2 || d.Writes() != 1 || d.Transfers() != 3 {
		t.Fatalf("counters: reads=%d writes=%d", d.Reads(), d.Writes())
	}
	// 1 write + 2 reads at DiskIO each.
	if want := sim.Time(3 * costs.DiskIO); eng.Now() != want {
		t.Fatalf("virtual time %v, want %v", eng.Now(), want)
	}
}

func TestReadMissingPanics(t *testing.T) {
	eng := sim.New(1)
	d := New(model.Default1988())
	eng.Go("t", func(f *sim.Fiber) { d.Read(f, 3) })
	defer func() {
		if recover() == nil {
			t.Fatal("read of missing page did not panic")
		}
	}()
	_ = eng.Run()
}

func TestHasAndDrop(t *testing.T) {
	eng := sim.New(1)
	d := New(model.Default1988())
	eng.Go("t", func(f *sim.Fiber) {
		if d.Has(1) {
			t.Error("Has on empty disk")
		}
		d.Write(f, 1, []byte{5})
		if !d.Has(1) {
			t.Error("Has after write")
		}
		d.Drop(1)
		if d.Has(1) {
			t.Error("Has after drop")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteKeepsSingleImage(t *testing.T) {
	eng := sim.New(1)
	d := New(model.Default1988())
	eng.Go("t", func(f *sim.Fiber) {
		d.Write(f, 1, []byte{1})
		d.Write(f, 1, []byte{2})
		if got := d.Read(f, 1); got[0] != 2 {
			t.Errorf("Read = %v, want latest image", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Writes() != 2 {
		t.Fatalf("writes = %d", d.Writes())
	}
}

func TestIOChargesConfiguredCost(t *testing.T) {
	eng := sim.New(1)
	costs := model.Default1988()
	costs.DiskIO = 5 * time.Millisecond
	d := New(costs)
	eng.Go("t", func(f *sim.Fiber) { d.Write(f, 1, []byte{0}) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != sim.Time(5*time.Millisecond) {
		t.Fatalf("time = %v", eng.Now())
	}
}
