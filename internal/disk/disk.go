// Package disk models a node's local paging disk. The Aegis virtual
// memory system underneath IVY pages to local disk with an approximately
// LRU replacement policy; the experiments in the paper (Table 1, and the
// super-linear speedup of Figure 4) hinge on how many page transfers this
// disk absorbs. Transfers charge the calibrated per-page I/O cost and are
// counted for the harness.
package disk

import (
	"fmt"

	"repro/internal/mmu"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Disk is one node's paging store.
type Disk struct {
	costs model.Costs
	store map[mmu.PageID][]byte

	reads  uint64
	writes uint64

	trc  *trace.Collector
	node int
}

// New creates an empty paging store.
func New(costs model.Costs) *Disk {
	return &Disk{costs: costs, store: make(map[mmu.PageID][]byte)}
}

// SetTracer installs a span collector; transfers performed by traced
// fibers become disk-read/disk-write spans on node.
func (d *Disk) SetTracer(c *trace.Collector, node int) {
	d.trc = c
	d.node = node
}

// Write pages data out to disk, stalling the fiber for the I/O time. The
// data is copied; the caller may reuse the buffer.
func (d *Disk) Write(f *sim.Fiber, p mmu.PageID, data []byte) {
	buf, ok := d.store[p]
	if !ok || len(buf) != len(data) {
		buf = make([]byte, len(data))
	}
	copy(buf, data)
	d.store[p] = buf
	d.writes++
	if d.trc != nil && f.Trace() != 0 {
		span := d.trc.Begin(d.node, trace.PhaseDiskWrite, trace.SpanID(f.Trace()), int32(p), "")
		f.Sleep(d.costs.DiskIO)
		d.trc.End(span)
		return
	}
	f.Sleep(d.costs.DiskIO)
}

// Read pages data in from disk, stalling the fiber for the I/O time. It
// panics if the page was never written: callers must consult Has first
// and zero-fill pages that have no disk image yet.
func (d *Disk) Read(f *sim.Fiber, p mmu.PageID) []byte {
	data, ok := d.store[p]
	if !ok {
		panic(fmt.Sprintf("disk: read of page %d with no disk image", p))
	}
	d.reads++
	if d.trc != nil && f.Trace() != 0 {
		span := d.trc.Begin(d.node, trace.PhaseDiskRead, trace.SpanID(f.Trace()), int32(p), "")
		f.Sleep(d.costs.DiskIO)
		d.trc.End(span)
	} else {
		f.Sleep(d.costs.DiskIO)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// Peek returns page p's disk image without charging I/O time or
// counting a read — nil if the page has none. Post-run inspection only
// (memory digests); the simulated system itself always pays Read.
func (d *Disk) Peek(p mmu.PageID) []byte { return d.store[p] }

// Has reports whether page p has a disk image.
func (d *Disk) Has(p mmu.PageID) bool {
	_, ok := d.store[p]
	return ok
}

// Drop discards page p's disk image (e.g. after ownership moved away).
func (d *Disk) Drop(p mmu.PageID) { delete(d.store, p) }

// Reads returns the number of page-in transfers performed.
func (d *Disk) Reads() uint64 { return d.reads }

// Writes returns the number of page-out transfers performed.
func (d *Disk) Writes() uint64 { return d.writes }

// Transfers returns total disk page transfers (reads + writes), the
// quantity Table 1 of the paper reports.
func (d *Disk) Transfers() uint64 { return d.reads + d.writes }
