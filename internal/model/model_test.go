package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefault1988Validates(t *testing.T) {
	if err := Default1988().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := FreeNetwork().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadQuantum(t *testing.T) {
	c := Default1988()
	c.ComputeQuantum = 0
	if c.Validate() == nil {
		t.Fatal("zero quantum accepted")
	}
	c.ComputeQuantum = -time.Millisecond
	if c.Validate() == nil {
		t.Fatal("negative quantum accepted")
	}
}

func TestValidateRejectsNegativeCosts(t *testing.T) {
	c := Default1988()
	c.DiskIO = -1
	if c.Validate() == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestPacketTimeLinearInSize(t *testing.T) {
	c := Default1988()
	t0 := c.PacketTime(0)
	t100 := c.PacketTime(100)
	t200 := c.PacketTime(200)
	if t0 != c.WireLatency {
		t.Fatalf("empty packet time %v, want the fixed latency %v", t0, c.WireLatency)
	}
	if t200-t100 != t100-t0 {
		t.Fatal("packet time not linear in size")
	}
}

func TestWireBandwidthMatchesTwelveMegabit(t *testing.T) {
	// 12 Mbit/s = 1.5 MB/s: one byte every ~667ns.
	c := Default1988()
	perMB := time.Duration(1<<20) * c.WireBytePeriod
	if perMB < 600*time.Millisecond || perMB > 800*time.Millisecond {
		t.Fatalf("1 MB transmits in %v; expected ~0.7s at 12 Mbit/s", perMB)
	}
}

func TestFreeNetworkZeroesCommunicationOnly(t *testing.T) {
	c := FreeNetwork()
	if c.WireLatency != 0 || c.WireBytePeriod != 0 || c.HandlerCPU != 0 ||
		c.FaultTrap != 0 || c.PageCopy != 0 {
		t.Fatal("communication costs not zeroed")
	}
	if c.MemRef == 0 || c.LocalOp == 0 || c.DiskIO == 0 {
		t.Fatal("computation/disk costs should be untouched")
	}
}

func TestCostOrderingIsPlausible(t *testing.T) {
	// The calibration's load-bearing ratios: a remote fault costs
	// thousands of memory references; disk beats the network per page
	// only slightly; a context switch is "a few procedure calls".
	c := Default1988()
	fault := c.FaultTrap + 2*c.WireLatency + c.HandlerCPU + 2*c.PageCopy +
		1024*c.WireBytePeriod
	if ratio := float64(fault) / float64(c.MemRef); ratio < 1000 {
		t.Fatalf("fault/memref ratio %.0f; a remote fault must dwarf a local reference", ratio)
	}
	if c.DiskIO < fault {
		t.Fatalf("disk I/O (%v) cheaper than a remote fault (%v); Figure 4 depends on disk being the slow path", c.DiskIO, fault)
	}
	if c.CtxSwitch > 20*c.MemRef*10 {
		t.Fatalf("context switch %v too expensive for a lightweight process", c.CtxSwitch)
	}
}

func TestPropertyPacketTimeMonotone(t *testing.T) {
	c := Default1988()
	prop := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.PacketTime(x) <= c.PacketTime(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
