// Package model holds the calibrated cost model for the simulated
// loosely-coupled multiprocessor: a cluster of 68020-class Apollo
// workstations on a 12 Mbit/s baseband token ring, as used by the IVY
// prototype (Li, ICPP 1988).
//
// The absolute constants are order-of-magnitude calibrations to the
// hardware the paper describes; the reproduction's claims are about
// *shapes* (speedup curves, crossovers, who wins), which depend on cost
// ratios rather than absolute values. Every experiment takes a Costs
// value, so sensitivity to the calibration is itself testable.
package model

import "time"

// Costs parameterizes all virtual-time charges in the simulation.
type Costs struct {
	// MemRef is the cost of one shared-virtual-memory reference that hits
	// local memory with sufficient access rights, including the software
	// accessor overhead a user-mode system pays. A 68020 at ~2 MIPS with a
	// few instructions of addressing per reference lands near 2µs.
	MemRef time.Duration

	// LocalOp is the cost of a short local computation step (a compare,
	// a floating-point multiply-add on private data, a loop iteration).
	LocalOp time.Duration

	// FaultTrap is the fixed CPU cost of fielding a page fault and
	// entering the user-mode handler (trap, decode, dispatch).
	FaultTrap time.Duration

	// HandlerCPU is the CPU time a node spends servicing one remote
	// request (unmarshal, table lookups, marshal). The paper stresses
	// that the user-mode implementation "has a lot of overhead"; a few
	// hundred microseconds of software path is consistent with its
	// remote operations costing tens of milliseconds end to end.
	HandlerCPU time.Duration

	// WireLatency is the fixed per-packet network cost: token wait,
	// controller, interrupt, and protocol software on both ends.
	WireLatency time.Duration

	// WireBytePeriod is the transmission time per byte. 12 Mbit/s =
	// 1.5 MB/s, i.e. ~667ns per byte; a 1 KB page adds ~0.7ms, which is
	// why the paper observes that large packets are "not much more
	// expensive" than small ones.
	WireBytePeriod time.Duration

	// PageCopy is the CPU time to copy one page between a frame and a
	// message buffer (about 1 KB through a 68020-era memory system),
	// charged at the serving owner and again when the faulting node
	// installs the page.
	PageCopy time.Duration

	// DiskIO is the cost of one page transfer between a node's physical
	// memory and its paging disk (seek + rotation + transfer on a
	// late-80s winchester disk).
	DiskIO time.Duration

	// CtxSwitch is a lightweight-process context switch — "on the order
	// of a few procedure calls" per the paper.
	CtxSwitch time.Duration

	// ProcCreate is the cost of creating a lightweight process
	// ("milliseconds in total" for a whole benchmark's worth, so
	// sub-millisecond each).
	ProcCreate time.Duration

	// TestAndSet is an atomic test-and-set on a resident page — "two
	// 68000 instructions for each locking".
	TestAndSet time.Duration

	// ComputeQuantum bounds how much accumulated computation a process
	// charges before yielding the simulated CPU, modelling the points at
	// which a user-mode system fields network interrupts.
	ComputeQuantum time.Duration
}

// Default1988 returns the calibration used for all headline experiments.
func Default1988() Costs {
	return Costs{
		MemRef:         2 * time.Microsecond,
		LocalOp:        1 * time.Microsecond,
		FaultTrap:      500 * time.Microsecond,
		HandlerCPU:     800 * time.Microsecond,
		WireLatency:    2 * time.Millisecond,
		WireBytePeriod: 667 * time.Nanosecond,
		PageCopy:       1500 * time.Microsecond,
		DiskIO:         25 * time.Millisecond,
		CtxSwitch:      50 * time.Microsecond,
		ProcCreate:     500 * time.Microsecond,
		TestAndSet:     4 * time.Microsecond,
		ComputeQuantum: 1 * time.Millisecond,
	}
}

// SystemMode1988 models the paper's projected system-mode (in-kernel)
// implementation: "a well-tuned system-mode implementation should
// improve the performance of remote operations and page moving by a
// factor of at least two" — the software halves of the fault path are
// halved, the wire and the disk stay physical.
func SystemMode1988() Costs {
	c := Default1988()
	c.FaultTrap /= 2
	c.HandlerCPU /= 2
	c.PageCopy /= 2
	c.WireLatency /= 2 // protocol software dominates the fixed packet cost
	return c
}

// FreeNetwork returns the default calibration with zero communication
// cost. Figure 6's discussion uses this: merge-split sort is sub-linear
// "even with no communication costs".
func FreeNetwork() Costs {
	c := Default1988()
	c.WireLatency = 0
	c.WireBytePeriod = 0
	c.HandlerCPU = 0
	c.FaultTrap = 0
	c.PageCopy = 0
	return c
}

// PacketTime returns the wire time for a packet of n payload bytes.
func (c Costs) PacketTime(n int) time.Duration {
	return c.WireLatency + time.Duration(n)*c.WireBytePeriod
}

// Validate reports whether every field is non-negative and the quantum is
// positive; the engine divides by ComputeQuantum when flushing charges.
func (c Costs) Validate() error {
	if c.ComputeQuantum <= 0 {
		return errNonPositiveQuantum
	}
	for _, d := range []time.Duration{
		c.MemRef, c.LocalOp, c.FaultTrap, c.HandlerCPU, c.WireLatency,
		c.WireBytePeriod, c.PageCopy, c.DiskIO, c.CtxSwitch, c.ProcCreate,
		c.TestAndSet,
	} {
		if d < 0 {
			return errNegativeCost
		}
	}
	return nil
}

var (
	errNonPositiveQuantum = validationError("model: ComputeQuantum must be positive")
	errNegativeCost       = validationError("model: cost fields must be non-negative")
)

type validationError string

func (e validationError) Error() string { return string(e) }
