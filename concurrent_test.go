package ivy

import (
	"sync"
	"testing"
	"time"
)

// crossClusterWorkload drives one self-contained simulation with
// enough cross-node sharing to cycle wire buffers and readers through
// the codec free lists continuously.
func crossClusterWorkload(seed int64) (time.Duration, uint64, uint64, error) {
	const (
		procs = 4
		slots = 32
		ops   = 40
	)
	c := New(Config{
		Processors:  procs,
		Seed:        seed,
		SharedPages: 64,
		Horizon:     200 * time.Hour,
	})
	err := c.Run(func(p *Proc) {
		data := p.MustMalloc(8 * slots)
		done := p.NewEventcount(procs + 1)
		for w := 0; w < procs; w++ {
			w := w
			p.CreateOn(w, func(q *Proc) {
				for op := 0; op < ops; op++ {
					slot := (w + op) % slots
					q.WriteU64(data+uint64(8*slot), uint64(w*1000+op))
					_ = q.ReadU64(data + uint64(8*((slot+slots/2)%slots)))
				}
				done.Advance(q)
			})
		}
		done.Wait(p, procs)
	})
	s := c.Snapshot()
	return c.Elapsed(), s.Packets, s.Total().Faults(), err
}

// TestConcurrentClusters runs two independent simulations from separate
// goroutines. Each Cluster is single-threaded by construction, but the
// wire codec's buffer/reader free lists are shared by every cluster in
// the process, so this test — run under -race in CI — pins the PR 2
// review fix that put those free lists behind a mutex. It also checks
// that concurrency leaks nothing between simulations: each concurrent
// run must reproduce its sequential baseline bit-for-bit (virtual time,
// packet count, fault count).
func TestConcurrentClusters(t *testing.T) {
	type result struct {
		elapsed time.Duration
		packets uint64
		faults  uint64
		err     error
	}
	seeds := []int64{11, 97}

	// Sequential baselines.
	base := make([]result, len(seeds))
	for i, seed := range seeds {
		e, p, f, err := crossClusterWorkload(seed)
		base[i] = result{e, p, f, err}
		if err != nil {
			t.Fatalf("baseline seed %d: %v", seed, err)
		}
		if base[i].packets == 0 {
			t.Fatalf("seed %d produced no wire traffic; the workload no longer exercises the codec free lists", seed)
		}
	}

	// The same two simulations, stepped concurrently.
	got := make([]result, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, p, f, err := crossClusterWorkload(seed)
			got[i] = result{e, p, f, err}
		}()
	}
	wg.Wait()

	for i, seed := range seeds {
		if got[i].err != nil {
			t.Fatalf("concurrent seed %d: %v", seed, got[i].err)
		}
		if got[i] != base[i] {
			t.Errorf("seed %d diverged under concurrency: sequential %+v, concurrent %+v",
				seed, base[i], got[i])
		}
	}
}
