package ivy

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/alloc"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/drace"
	"repro/internal/metrics"
	"repro/internal/mmu"
	"repro/internal/proc"
	"repro/internal/rc"
	"repro/internal/remop"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpnet"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Cluster is a simulated loosely-coupled multiprocessor running IVY: a
// token ring of nodes, each with a CPU, physical frames, a paging disk,
// a shared-virtual-memory instance, a process manager, and an allocator
// attachment. Create one with New, then call Run exactly once.
type Cluster struct {
	cfg Config
	eng *sim.Engine

	// nw is the simulated ring (nil when a TCP transport is selected);
	// lb is the TCP-loopback backend (nil under sim). tps holds each
	// node's transport view: every entry aliases nw under sim, and is
	// the node's own tcpnet.Net under TCP loopback. Code that works on
	// either backend goes through tps / the ring.Transport interface;
	// sim-only planes (loss, chaos, tracing) keep the concrete nw.
	nw  *ring.Network
	lb  *tcpnet.Loopback
	tps []ring.Transport

	// nd/nddrv are set only in multi-process node mode (NewNode): this
	// process's own TCP station and its pacing driver. svms, sts,
	// allocs, and procs then hold exactly one entry — the local rank.
	nd    *tcpnet.Net
	nddrv *tcpnet.Driver

	svms    []*core.SVM
	sts     []*stats.Node
	allocs  []*alloc.Service
	procs   *proc.Cluster
	inj     *chaos.Injector    // nil unless Config.Chaos was set
	rd      *drace.Detector    // nil unless Config.DRace was set
	prof    *metrics.Collector // nil unless Config.Profile was set
	elapsed sim.Time
	ran     bool

	// Tracing state; all nil/zero unless StartTrace (or Config.Trace)
	// enabled it.
	tr        *trace.Collector
	traceW    io.Writer
	sampleIvl time.Duration
}

// New assembles a cluster from cfg.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Processors < 1 || cfg.Processors > 64 {
		panic(fmt.Sprintf("ivy: %d processors out of range [1,64]", cfg.Processors))
	}
	switch cfg.Coherence {
	case CoherenceSC, CoherenceRC:
	default:
		panic(fmt.Sprintf("ivy: unknown coherence mode %q", cfg.Coherence))
	}
	// Under release consistency the shared space doubles: pages
	// [0, SharedPages) are the RC data arena, pages [SharedPages,
	// 2*SharedPages) are the SC sync arena holding locks, eventcounts,
	// sequencers, and stacks (see DESIGN.md §14). User allocations and
	// digests see exactly the SharedPages-sized space they asked for.
	rcOn := cfg.Coherence == CoherenceRC
	numPages := cfg.SharedPages
	if rcOn {
		numPages *= 2
	}
	if cfg.DRace {
		// The detector hooks live on the checked access tails; the TLB
		// fast paths are kept call-free (//ivy:hotpath), so arming the
		// detector routes every access through a hooked tail. Virtual time
		// is identical either way (see Config.DisableTLB).
		cfg.DisableTLB = true
	}
	if cfg.Profile {
		// Same mechanism as DRace: the profiler's dirty-word hooks live on
		// the checked store tails, so profiling disables the TLBs to route
		// every write through a hooked tail. Virtual time is unchanged.
		cfg.DisableTLB = true
	}
	eng := sim.New(cfg.Seed)
	c := &Cluster{cfg: cfg, eng: eng, tps: make([]ring.Transport, cfg.Processors)}
	switch cfg.Transport {
	case "", TransportSim:
		c.nw = ring.New(eng, *cfg.Costs, cfg.Processors)
		if cfg.LossProbability > 0 {
			c.nw.SetLossProbability(cfg.LossProbability)
		}
		for i := range c.tps {
			c.tps[i] = c.nw
		}
	case TransportTCPLoopback:
		if cfg.LossProbability > 0 || cfg.Chaos != nil || cfg.Trace != nil {
			panic("ivy: loss injection, chaos, and tracing are simulator planes; not available over " + cfg.Transport)
		}
		lb, err := tcpnet.NewLoopback(eng, cfg.Processors, cfg.TimeScale, tcpnet.Options{})
		if err != nil {
			panic(fmt.Sprintf("ivy: tcp loopback transport: %v", err))
		}
		c.lb = lb
		eng.SetExternal(lb.Driver())
		for i := range c.tps {
			c.tps[i] = lb.Net(i)
		}
	default:
		panic(fmt.Sprintf("ivy: unknown transport %q", cfg.Transport))
	}

	// Late-bound load functions: the proc layer is built after the
	// endpoints that need its hints.
	nodes := make([]*proc.Node, cfg.Processors)
	for i := 0; i < cfg.Processors; i++ {
		i := i
		cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", i), 1)
		loadFn := func() uint8 {
			if nodes[i] == nil {
				return 0
			}
			return nodes[i].LoadHint()
		}
		ep := remop.NewEndpoint(eng, c.tps[i], ring.NodeID(i), cpu, *cfg.Costs, loadFn)
		st := &stats.Node{}
		svm := core.New(eng, ep, cpu, core.Config{
			Node:                  ring.NodeID(i),
			PageSize:              cfg.PageSize,
			NumPages:              numPages,
			MemPages:              cfg.MemoryPages,
			DefaultOwner:          0,
			Algorithm:             cfg.Algorithm,
			Costs:                 *cfg.Costs,
			BroadcastInvalidation: cfg.BroadcastInvalidation,
		}, st)
		c.svms = append(c.svms, svm)
		c.sts = append(c.sts, st)
		ac := alloc.Config{
			Central:   0,
			Base:      svm.Base(),
			Size:      uint64(cfg.SharedPages) * uint64(cfg.PageSize),
			PageSize:  cfg.PageSize,
			TwoLevel:  cfg.TwoLevelAlloc,
			ChunkSize: cfg.ChunkBytes,
		}
		if rcOn {
			ac.SyncBase = svm.Base() + ac.Size
			ac.SyncSize = ac.Size
		}
		c.allocs = append(c.allocs, alloc.New(ep, ac))
	}
	if c.lb != nil {
		// Reconnect down-hints: a peer the dialer cannot reach is marked
		// down on the local endpoint (remop's PR 4 machinery — fail-fast
		// calls, widened retransmission backoff) and cleared when the
		// link comes back. The hook runs in engine context.
		for i, svm := range c.svms {
			ep := svm.Endpoint()
			c.lb.Net(i).SetDownHook(func(peer ring.NodeID, down bool) {
				ep.MarkNodeDown(peer, down)
			})
		}
	}
	if rcOn {
		// Arm before the chaos plane (its DropWriteNotice hook needs the
		// RC state) and before any process touches shared memory. The
		// directory lives on node 0 beside the central allocator.
		for _, svm := range c.svms {
			svm.ArmRC(cfg.SharedPages, 0)
		}
	}
	c.procs = proc.NewCluster(eng, c.svms, *cfg.Balance)
	c.procs.SetDisableTLB(cfg.DisableTLB)
	for i := 0; i < cfg.Processors; i++ {
		nodes[i] = c.procs.Node(i)
	}
	if cfg.DRace {
		c.armDRace()
	}
	if cfg.Profile {
		c.armProfile()
	}
	if cfg.Chaos != nil {
		c.armChaos(*cfg.Chaos)
	}
	if cfg.Trace != nil {
		c.StartTrace(cfg.Trace.W, TraceOpts{SampleInterval: cfg.Trace.SampleInterval})
	}
	return c
}

// armDRace builds the happens-before race detector and installs it on
// every SVM (access checks) and the process layer (fork/join edges, the
// vector clocks carried by notify and migration messages).
func (c *Cluster) armDRace() {
	c.rd = drace.New(c.svms[0].Base(), c.cfg.PageSize,
		func() time.Duration { return c.eng.Now().Duration() })
	for _, svm := range c.svms {
		svm.SetRaceDetector(c.rd)
	}
	c.procs.SetRaceDetector(c.rd)
	if c.tr != nil {
		c.rd.SetTraceCollector(c.tr)
	}
}

// armProfile builds the shared coherence profiler and installs it on
// every SVM. One collector serves the whole cluster: page indices are
// global, and the dirty-word map follows a page's ownership from node to
// node (serveWrite flushes it at each hand-off).
func (c *Cluster) armProfile() {
	c.prof = metrics.NewCollector(c.svms[0].Base(), uint64(c.cfg.PageSize),
		c.cfg.SharedPages, func() int64 { return int64(c.eng.Now().Duration()) })
	for _, svm := range c.svms {
		svm.SetProfiler(c.prof)
	}
}

// MetricsSnapshot is the page-heat/false-sharing profile, re-exported
// from the metrics plane.
type MetricsSnapshot = metrics.Snapshot

// MetricsSnapshot returns the page-level coherence profile accumulated
// so far, or nil when Config.Profile is off. Deterministic per
// (seed, config).
func (c *Cluster) MetricsSnapshot() *MetricsSnapshot {
	if c.prof == nil {
		return nil
	}
	return c.prof.Snapshot()
}

// LabelRegion attaches name to the address range [base, base+size) in
// the profiler, so ivyprof reports can attribute pages to application
// arrays. A no-op when Config.Profile is off.
func (c *Cluster) LabelRegion(name string, base, size uint64) {
	if c.prof != nil {
		c.prof.LabelRegion(name, base, size)
	}
}

// RaceReport is one detected data race, re-exported from the detector.
type RaceReport = drace.Report

// RaceReports returns every data race the detector has found so far, in
// detection order, deduplicated per (word, access pair). Deterministic
// per (seed, config). Empty when Config.DRace is off.
func (c *Cluster) RaceReports() []RaceReport {
	if c.rd == nil {
		return nil
	}
	return c.rd.Reports()
}

// armChaos converts the public ChaosOpts into the internal fault plane
// and installs it: the ring injector, the crash/rejoin schedule, and
// (tests only) the broken-invalidation hook.
func (c *Cluster) armChaos(co ChaosOpts) {
	opts := chaos.Opts{
		DuplicateProb:  co.DuplicateProbability,
		DuplicateDelay: co.DuplicateDelay,
		DelayProb:      co.DelayProbability,
		MaxDelay:       co.MaxDelay,
		LossProb:       co.LossProbability,
		BurstProb:      co.BurstProbability,
		BurstLen:       co.BurstLength,
		MaxFaults:      co.MaxFaults,
	}
	for _, cr := range co.Crashes {
		if cr.Node < 0 || cr.Node >= c.cfg.Processors {
			panic(fmt.Sprintf("ivy: chaos crash of unknown node %d", cr.Node))
		}
		opts.Crashes = append(opts.Crashes, chaos.Crash{
			Node: ring.NodeID(cr.Node), At: cr.At, Downtime: cr.Downtime,
		})
	}
	c.inj = chaos.NewInjector(c.eng, opts, c.cfg.Processors)
	c.nw.SetInjector(c.inj)
	if len(opts.Crashes) > 0 {
		eps := make([]*remop.Endpoint, len(c.svms))
		for i, svm := range c.svms {
			eps[i] = svm.Endpoint()
		}
		c.inj.ScheduleCrashes(c.nw, eps)
	}
	if co.BreakInvalidation {
		for _, svm := range c.svms {
			svm.SetInvalDropHook(func(mmu.PageID) bool { return true })
		}
	}
	if co.DropWriteNotice {
		if c.cfg.Coherence != CoherenceRC {
			panic("ivy: DropWriteNotice needs Coherence " + CoherenceRC)
		}
		for _, svm := range c.svms {
			svm.SetRCNoticeDropHook(func() bool { return true })
		}
	}
}

// ChaosStats is the injected-fault counter block, re-exported from the
// fault plane.
type ChaosStats = chaos.Stats

// ChaosStats returns the injected-fault counters, or the zero value when
// no fault plane is armed.
func (c *Cluster) ChaosStats() chaos.Stats {
	if c.inj == nil {
		return chaos.Stats{}
	}
	return c.inj.Stats()
}

// ChaosDigest returns the FNV-1a digest of the injected fault schedule
// (0 when no fault plane is armed). Two runs saw identical fault
// schedules iff their digests match.
func (c *Cluster) ChaosDigest() uint64 {
	if c.inj == nil {
		return 0
	}
	return c.inj.Digest()
}

// NetworkStats returns the transport's traffic counters — the ring's,
// including the per-receiver delivery accounting the fault plane adds,
// or the summed per-station counters of the TCP loopback backend.
func (c *Cluster) NetworkStats() ring.Stats {
	if c.lb != nil {
		return c.lb.Stats()
	}
	if c.nd != nil {
		return c.nd.Stats()
	}
	return c.nw.Stats()
}

// netNodeKinds returns the per-station per-kind counters for whichever
// backend is active.
func (c *Cluster) netNodeKinds() [][wire.NumKinds]ring.KindStats {
	if c.lb != nil {
		return c.lb.NodeKinds()
	}
	if c.nd != nil {
		return c.nd.NodeKinds()
	}
	return c.nw.NodeKinds()
}

// allocFor returns the allocator attachment serving the given rank. In
// a single-process cluster ranks index the slice directly; a NewNode
// process holds exactly one attachment — its own rank's.
func (c *Cluster) allocFor(rank int) *alloc.Service {
	if len(c.allocs) == 1 {
		return c.allocs[0]
	}
	return c.allocs[rank]
}

// TraceOpts configures StartTrace.
type TraceOpts struct {
	// SampleInterval, when positive, arms the virtual-time sampler at
	// that interval.
	SampleInterval time.Duration
}

// StartTrace enables the protocol span tracer: every coherence fault
// becomes a causally-linked span tree across the nodes it touches, and
// process lifetimes and migrations are recorded. When w is non-nil, Run
// writes the whole trace to it as Perfetto/Chrome trace-event JSON on
// completion. Call before Run; calling twice or after Run panics.
func (c *Cluster) StartTrace(w io.Writer, opts TraceOpts) {
	if c.ran {
		panic("ivy: StartTrace after Run")
	}
	if c.tr != nil {
		panic("ivy: StartTrace called twice")
	}
	if c.nw == nil {
		panic("ivy: span tracing is a simulator plane; not available over " + c.cfg.Transport)
	}
	c.tr = trace.NewCollector(func() time.Duration { return c.eng.Now().Duration() })
	c.traceW = w
	c.sampleIvl = opts.SampleInterval
	c.nw.SetTracer(c.tr)
	for _, svm := range c.svms {
		svm.SetTraceCollector(c.tr)
		svm.Endpoint().SetTracer(c.tr)
	}
	c.procs.SetTraceCollector(c.tr)
	if c.rd != nil {
		c.rd.SetTraceCollector(c.tr)
	}
}

// TraceCollector returns the active span collector, or nil when tracing
// is off. Consumers needing the raw spans (tests, custom reports)
// import repro/internal/trace for the types.
func (c *Cluster) TraceCollector() *trace.Collector { return c.tr }

// Processors returns the cluster size.
func (c *Cluster) Processors() int { return c.cfg.Processors }

// PageSize returns the configured page size.
func (c *Cluster) PageSize() int { return c.cfg.PageSize }

// Base returns the first shared address.
func (c *Cluster) Base() uint64 { return c.svms[0].Base() }

// ErrHorizon reports a Run that hit its virtual-time bound.
var ErrHorizon = errors.New("ivy: program did not finish within the run horizon (deadlock or runaway loop)")

// Run creates the main process on node 0 (the processor "with which the
// user directly contacts"), runs the simulation until it terminates, and
// records the elapsed virtual time. Run may be called once.
func (c *Cluster) Run(main func(p *Proc)) error {
	if c.ran {
		panic("ivy: Run called twice on one cluster")
	}
	c.ran = true
	if c.lb != nil {
		// Graceful shutdown on every exit path: stop the listeners,
		// join the connection goroutines, release the engine bridge.
		defer c.lb.Close()
	}
	if c.nd != nil {
		defer func() {
			c.nd.Close()
			c.nddrv.Close()
		}()
	}
	mp := c.procs.Node(0).Create(func(inner *proc.Process) {
		main(&Proc{inner: inner, c: c})
	}, proc.CreateOpts{Name: "main", Migratable: false})
	finished := false
	c.eng.Go("run-watcher", func(f *sim.Fiber) {
		mp.Join(f)
		c.elapsed = c.eng.Now()
		finished = true
		if c.nd != nil {
			c.lingerNode(f)
		}
		c.procs.Stop()
		c.eng.Stop()
	})
	if c.tr != nil && c.sampleIvl > 0 {
		cancel := c.armSampler()
		defer cancel()
	}
	runErr := c.eng.RunUntil(sim.Time(c.cfg.Horizon))
	// Close and export the trace on every exit path, so even a deadlock
	// or horizon run leaves an inspectable trace file.
	traceErr := c.finishTrace()
	if runErr != nil {
		return runErr
	}
	if !finished {
		return fmt.Errorf("%w: parked fibers: %v; held page locks: %v",
			ErrHorizon, c.eng.Parked(), c.heldPageLocks())
	}
	return traceErr
}

// lingerNode keeps a multi-process node's engine alive after its own
// program finished. The other ranks of the cluster may still need this
// rank: a page it owns, a fault reply it has not flushed, an eventcount
// wakeup queued on its wire. A rank that stopped dispatching the moment
// its main returned would strand whichever peer asked last — there is
// always a last message, so "finish, then exit" is not a protocol, it
// is a race. Instead every rank keeps serving until the link is quiet:
// no frame sent or received for two consecutive quiet windows and every
// outbound queue flushed to the kernel. Quiet is a global property —
// while ANY rank is still working, its faults keep its peers' windows
// open — so no rank withdraws while another still needs it, yet the
// cluster as a whole exits promptly once the traffic truly stops.
func (c *Cluster) lingerNode(f *sim.Fiber) {
	// The window is meaningful in wall terms (it must cover a few
	// loopback round trips plus scheduling noise); sleep its scaled
	// virtual equivalent so the driver paces it to that wall duration.
	const quietWall = 100 * time.Millisecond
	window := time.Duration(int64(quietWall) * c.nddrv.Scale())
	last := c.nd.Activity()
	for quiet := 0; quiet < 2; {
		f.Sleep(window)
		cur := c.nd.Activity()
		if cur == last && c.nd.OutboundDrained() {
			quiet++
		} else {
			quiet = 0
		}
		last = cur
	}
}

// armSampler schedules the virtual-time series recorder. Ring
// utilization is the wire time reserved during the interval divided by
// the interval; a send burst reserving time past the sample instant can
// push a sample above 1.
func (c *Cluster) armSampler() (cancel func()) {
	var lastBusy time.Duration
	return c.eng.Every(c.sampleIvl, func() {
		ns := c.nw.Stats()
		smp := trace.Sample{
			Time:            c.eng.Now().Duration(),
			InFlightFaults:  c.tr.InFlightFaults(),
			RingUtilization: float64(ns.WireBusy-lastBusy) / float64(c.sampleIvl),
			Resident:        make([]int, len(c.svms)),
			Runnable:        make([]int, len(c.svms)),
		}
		lastBusy = ns.WireBusy
		for i, svm := range c.svms {
			smp.Resident[i] = svm.Pool().Len()
			n := c.procs.Node(i)
			r := n.ReadyLen()
			if n.Current() != nil {
				r++
			}
			smp.Runnable[i] = r
		}
		c.tr.AddSample(smp)
	})
}

// finishTrace closes open spans and writes the Perfetto export.
func (c *Cluster) finishTrace() error {
	if c.tr == nil {
		return nil
	}
	c.tr.CloseOpen()
	if c.traceW == nil {
		return nil
	}
	if err := trace.ExportPerfetto(c.traceW, c.tr, len(c.svms)); err != nil {
		return fmt.Errorf("ivy: trace export: %w", err)
	}
	return nil
}

// heldPageLocks lists page fault locks still held across the cluster
// with their holders — the first thing to look at in a hang report.
func (c *Cluster) heldPageLocks() []string {
	var out []string
	for n, svm := range c.svms {
		t := svm.Table()
		for p := 0; p < svm.NumPages(); p++ {
			pg := mmu.PageID(p)
			if t.Locked(pg) {
				out = append(out, fmt.Sprintf("node%d/page%d by %q", n, p, t.LockHolder(pg)))
			}
		}
	}
	return out
}

// Elapsed returns the virtual time the program took — the quantity the
// paper's speedup curves are built from.
func (c *Cluster) Elapsed() time.Duration { return c.elapsed.Duration() }

// Now returns the current virtual time (usable mid-run from processes).
func (c *Cluster) Now() time.Duration { return c.eng.Now().Duration() }

// Snapshot collects a cluster-wide statistics snapshot. It may be taken
// mid-run (from inside a process) or after Run returns; two snapshots
// subtract to interval deltas.
func (c *Cluster) Snapshot() ClusterStats {
	out := ClusterStats{
		Nodes:       make([]NodeStats, len(c.svms)),
		NodeLatency: make([]Latency, len(c.svms)),
	}
	for i, svm := range c.svms {
		n := *c.sts[i]
		n.DiskReads = svm.Disk().Reads()
		n.DiskWrites = svm.Disk().Writes()
		n.Evictions = svm.Pool().Evictions()
		out.Nodes[i] = n
		out.NodeLatency[i] = *svm.Latency()
		out.Latency.Merge(*svm.Latency())
		eps := svm.Endpoint().Stats()
		out.Forwards += eps.Forwards
		out.Retransmissions += eps.Retransmissions
		out.Broadcasts += eps.Broadcasts
	}
	ns := c.NetworkStats()
	out.Packets = ns.Packets
	out.NetBytes = ns.Bytes
	out.WireBusy = ns.WireBusy
	out.Kinds = make([]stats.KindCount, len(ns.Kinds))
	for i, k := range ns.Kinds {
		out.Kinds[i] = stats.KindCount{Packets: k.Packets, Bytes: k.Bytes, Drops: k.Drops}
	}
	for _, nk := range c.netNodeKinds() {
		row := make([]stats.KindCount, len(nk))
		for i, k := range nk {
			row[i] = stats.KindCount{Packets: k.Packets, Bytes: k.Bytes, Drops: k.Drops}
		}
		out.NodeKinds = append(out.NodeKinds, row)
	}
	return out
}

// RCNodeStats re-exports the per-node release-consistency protocol
// counters (zero-valued under Coherence "sc").
type RCNodeStats = rc.Stats

// RCStats returns each node's release-consistency protocol counters, or
// nil when the cluster runs sequentially consistent. Index = node id.
func (c *Cluster) RCStats() []RCNodeStats {
	if c.cfg.Coherence != CoherenceRC {
		return nil
	}
	out := make([]RCNodeStats, len(c.svms))
	for i, svm := range c.svms {
		if rcn := svm.RC(); rcn != nil {
			out[i] = rcn.Stats()
		}
	}
	return out
}

// PageEvent re-exports the coherence transition record for tracing.
type PageEvent = core.PageEvent

// SetPageTrace reports every coherence transition of the page containing
// addr on every node to fn — the fastest way to watch a page's life
// cycle (replication, invalidation, ownership movement). Install before
// Run; fn runs in engine context and must not block.
func (c *Cluster) SetPageTrace(addr uint64, fn func(PageEvent)) {
	p := c.svms[0].PageOf(addr)
	for _, svm := range c.svms {
		svm.SetPageTracer(p, false, fn)
	}
}

// SetAllPagesTrace traces every page's transitions (verbose).
func (c *Cluster) SetAllPagesTrace(fn func(PageEvent)) {
	for _, svm := range c.svms {
		svm.SetPageTracer(0, true, fn)
	}
}

// Latencies returns a merged cluster-wide view of the fault-service
// histograms — the microbenchmark numbers (end-to-end read-fault time
// and so on) the original work reported.
func (c *Cluster) Latencies() stats.Latency {
	var out stats.Latency
	for _, svm := range c.svms {
		out.Merge(*svm.Latency())
	}
	return out
}

// NodeUtilization returns each node's CPU utilization over the run.
func (c *Cluster) NodeUtilization() []float64 {
	out := make([]float64, len(c.svms))
	for i, svm := range c.svms {
		out[i] = svm.CPU().Utilization()
	}
	return out
}

// MessageEvent describes one delivered message, for tracing.
type MessageEvent struct {
	Time    time.Duration
	Node    int // receiving node
	Kind    string
	Origin  int
	Sender  int
	Request bool
	Reply   bool
}

// SetMessageTrace installs fn as a tap on every node's message delivery.
// Call before Run. The callback runs for each delivered envelope —
// tracing is verbose by design; cmd/ivytrace caps the output. A nil fn
// detaches the tap, restoring the zero-cost delivery path.
func (c *Cluster) SetMessageTrace(fn func(MessageEvent)) {
	if fn == nil {
		for _, svm := range c.svms {
			svm.Endpoint().SetDeliverHook(nil)
		}
		return
	}
	for i, svm := range c.svms {
		i := i
		svm.Endpoint().SetDeliverHook(func(env *wire.Envelope) {
			fn(MessageEvent{
				Time:    c.eng.Now().Duration(),
				Node:    i,
				Kind:    env.Body.Kind().String(),
				Origin:  int(env.Origin),
				Sender:  int(env.Sender),
				Request: env.IsRequest(),
				Reply:   env.IsReply(),
			})
		})
	}
}

// DigestRegion returns the FNV-1a hash of the shared address range
// [base, base+size) as it stands now, read from each page's owner via
// uncharged peeks (see core.DigestRegion). Call after Run, or from a
// quiescent point inside one: virtual time, LRU state, and fault counts
// are untouched. Two runs of the same program — on any transport — that
// agree on final memory agree on the digest.
func (c *Cluster) DigestRegion(base, size uint64) uint64 {
	return core.DigestRegion(c.svms, base, size)
}

// VerifyCoherence checks the shared virtual memory's protocol invariants
// (single owner per page, single writer, registered readers, sane
// probOwner hints, no stuck fault locks). Call after Run, or from a
// quiescent point inside one; a non-empty result is a protocol bug.
func (c *Cluster) VerifyCoherence() []error {
	return core.VerifyCoherence(c.svms)
}
