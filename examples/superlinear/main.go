// Super-linear speedup — the paper's Figure 4 phenomenon, live.
//
// The 3-D PDE solver's data exceeds one node's physical memory, so the
// one-processor run pages against its disk on every sweep. Adding a
// second processor doubles the cluster's combined memory: the data
// distributes through ordinary shared-virtual-memory page faults, the
// disk traffic collapses, and the speedup exceeds the processor count —
// "the shared virtual memory can effectively exploit not only the
// available processors but also the combined physical memories".
//
//	go run ./examples/superlinear
package main

import (
	"fmt"
	"log"
	"time"

	ivy "repro"
	"repro/internal/apps"
)

func main() {
	// Three N=24 float32 arrays occupy ~165 pages; 110 frames per node
	// means one node thrashes while two nodes' combined 220 frames hold
	// everything.
	par := apps.PDE3DParams{N: 24, Iters: 6, Seed: 11}
	const frames = 110

	fmt.Println("3-D PDE solver, data larger than one node's memory")
	fmt.Printf("%-6s %-14s %-8s %-14s\n", "procs", "virtual time", "speedup", "disk transfers")

	var t1 time.Duration
	for procs := 1; procs <= 3; procs++ {
		res, err := apps.RunPDE3D(ivy.Config{
			Processors:  procs,
			MemoryPages: frames,
			SharedPages: 1024,
			Seed:        1,
		}, par)
		if err != nil {
			log.Fatalf("procs=%d: %v", procs, err)
		}
		if procs == 1 {
			t1 = res.Elapsed
		}
		speedup := float64(t1) / float64(res.Elapsed)
		marker := ""
		if speedup > float64(procs) {
			marker = "  <- super-linear"
		}
		fmt.Printf("%-6d %-14s %-8.2f %-14d%s\n",
			procs, res.Elapsed.Round(time.Millisecond), speedup,
			res.Stats.Total().DiskTransfers(), marker)
	}
	fmt.Println("\nThe \"fundamental law\" assumes every processor has infinite")
	fmt.Println("memory; with real memories, distributing the data eliminates")
	fmt.Println("the paging that dominates the one-processor run.")
}
