// Process migration and passive load balancing — the runtime half of the
// paper. A batch of compute-bound processes is created on one node with
// system scheduling; idle nodes ask for work, the loaded node migrates
// ready processes (PCB plus current stack page, upper stack pages by
// ownership transfer), and the makespan drops accordingly. The same
// batch with balancing disabled runs serially on node 0.
//
//	go run ./examples/migration [-procs 4] [-workers 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	ivy "repro"
)

func main() {
	procs := flag.Int("procs", 4, "processors")
	workers := flag.Int("workers", 12, "processes to spawn on node 0")
	flag.Parse()

	run := func(balanced bool) (time.Duration, ivy.ClusterStats) {
		bal := ivy.DefaultBalance()
		bal.Enabled = balanced
		cluster := ivy.New(ivy.Config{Processors: *procs, Seed: 9, Balance: &bal})
		err := cluster.Run(func(p *ivy.Proc) {
			done := p.NewEventcount(*workers + 1)
			for i := 0; i < *workers; i++ {
				p.Create(func(q *ivy.Proc) {
					q.Compute(time.Second) // a second of private computation
					done.Advance(q)
				}, ivy.WithName(fmt.Sprintf("job%d", i)))
			}
			done.Wait(p, int64(*workers))
		})
		if err != nil {
			log.Fatal(err)
		}
		return cluster.Elapsed(), cluster.Snapshot()
	}

	fmt.Printf("%d one-second jobs created on node 0 of a %d-node cluster\n\n", *workers, *procs)

	off, _ := run(false)
	fmt.Printf("balancing off: %v (everything runs on node 0)\n", off.Round(time.Millisecond))

	on, s := run(true)
	var migs uint64
	for _, n := range s.Nodes {
		migs += n.Proc.MigrationsIn
	}
	fmt.Printf("balancing on:  %v (%d migrations; idle nodes pulled work)\n",
		on.Round(time.Millisecond), migs)
	fmt.Printf("\nmakespan improvement: %.2fx\n", float64(off)/float64(on))
	fmt.Println("\nper-node wakeup/migration counters:")
	for i, n := range s.Nodes {
		fmt.Printf("  node %d: in=%d out=%d work-requests=%d\n",
			i, n.Proc.MigrationsIn, n.Proc.MigrationsOut, n.Proc.WorkRequests)
	}
}
