// Parallel branch-and-bound TSP over shared virtual memory: the graph,
// the branch pool, and the least upper bound all live in shared pages,
// exactly as the paper's benchmark describes — workers "access shared
// data structures mutually exclusively" through test-and-set locks, and
// the bound's page migrates to whichever node improves it.
//
//	go run ./examples/tsp [-cities 12] [-procs 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	ivy "repro"
	"repro/internal/apps"
)

func main() {
	cities := flag.Int("cities", 14, "number of cities (<= 15; below ~13 the fixed costs dominate)")
	procs := flag.Int("procs", 4, "processors")
	flag.Parse()

	par := apps.TSPParams{Cities: *cities, SeedDepth: 2, Seed: 3}
	graph := apps.NewRandomGraph(*cities, par.Seed)

	fmt.Printf("branch-and-bound over %d cities on %d processors\n", *cities, *procs)

	seq := time.Now()
	want := apps.SequentialBranchAndBound(graph)
	fmt.Printf("sequential reference: tour cost %.2f (%v of real time)\n",
		want, time.Since(seq).Round(time.Millisecond))

	r1, err := apps.RunTSP(ivy.Config{Processors: 1, Seed: 1}, par)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := apps.RunTSP(ivy.Config{Processors: *procs, Seed: 1}, par)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n1 processor:  %v\n", r1.Elapsed.Round(time.Millisecond))
	fmt.Printf("%d processors: %v  (speedup %.2f)\n",
		*procs, rp.Elapsed.Round(time.Millisecond),
		float64(r1.Elapsed)/float64(rp.Elapsed))
	fmt.Printf("optimal tour cost: %.2f\n", rp.Check)
	tot := rp.Stats.Total()
	fmt.Printf("shared-memory traffic: %d faults, %d invalidations, %d packets\n",
		tot.Faults(), tot.SVM.InvalSent, rp.Stats.Packets)
	fmt.Println("\n(parallel branch-and-bound can show speedup anomalies — the")
	fmt.Println(" bound may improve earlier or later than in the sequential")
	fmt.Println(" order, changing how much of the tree gets pruned)")
}
