// Racedemo: a planted data race the drace detector must catch.
//
// A writer fills a shared buffer and then raises a plain flag word — no
// eventcount, no lock. A reader spins on the flag and then reads the
// buffer. On IVY the reader always sees the writer's values: page
// coherence moves the whole page, and the flag is written last. But
// nothing in the *program's* synchronization orders the buffer accesses;
// the ordering is a coincidence of page-invalidation timing. This is
// exactly the bug class the detector exists for: with -race-style
// happens-before tracking over eventcounts/locks/spawn/join only, both
// the flag spin and the buffer reads are unordered with the writes.
//
// The demo runs the same seed twice, shows that the reports are
// deterministic, prints the first race, and exits 0 only when the race
// was caught both times — CI runs it as the fail-closed check that the
// detector stays armed.
//
//	go run ./examples/racedemo
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	ivy "repro"
)

const (
	words    = 32
	flagSlot = words // flag word sits after the data words
)

// run executes the planted-race program once and returns the reports.
func run(seed int64) []ivy.RaceReport {
	cluster := ivy.New(ivy.Config{Processors: 2, Seed: seed, DRace: true})
	err := cluster.Run(func(p *ivy.Proc) {
		buf := p.MustMalloc(8 * (words + 1))
		at := func(i int) uint64 { return buf + 8*uint64(i) }
		p.WriteU64(at(flagSlot), 0)

		done := p.NewEventcount(2)
		p.CreateOn(1, func(q *ivy.Proc) {
			// Reader: spin on the flag word, then consume the buffer.
			// The spin "synchronizes" only through the coherence
			// protocol — the planted bug.
			for q.ReadU64(at(flagSlot)) == 0 {
				q.Sleep(time.Millisecond)
			}
			sum := uint64(0)
			for i := 0; i < words; i++ {
				sum += q.ReadU64(at(i))
			}
			if sum == 0 {
				log.Fatal("racedemo: reader saw no data (coherence bug?)")
			}
			done.Advance(q)
		}, ivy.WithName("reader"))

		// Writer (the main process): fill the buffer, then raise the flag
		// with a plain write.
		for i := 0; i < words; i++ {
			p.WriteU64(at(i), uint64(i+1))
		}
		p.WriteU64(at(flagSlot), 1)

		done.Wait(p, 1) // spawn/join edges are real; only the flag is racy
	})
	if err != nil {
		log.Fatalf("racedemo: %v", err)
	}
	return cluster.RaceReports()
}

func main() {
	first := run(7)
	second := run(7)

	if len(first) == 0 {
		fmt.Println("FAIL: planted race not detected")
		os.Exit(1)
	}
	if len(first) != len(second) {
		fmt.Printf("FAIL: report count not deterministic (%d vs %d)\n", len(first), len(second))
		os.Exit(1)
	}
	for i := range first {
		if first[i] != second[i] {
			fmt.Printf("FAIL: report %d differs between identical runs:\n  %v\n  %v\n", i, first[i], second[i])
			os.Exit(1)
		}
	}

	fmt.Printf("caught %d race reports, deterministic across runs\n", len(first))
	fmt.Printf("first race: %v\n", first[0])
}
