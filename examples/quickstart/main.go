// Quickstart: a parallel sum over the shared virtual memory.
//
// Four processes on four simulated processors each fill a slice of a
// shared array and add a partial sum into a shared cell guarded by a
// test-and-set lock; an eventcount signals completion. The pages holding
// the array migrate to each writer on demand and the partial-sum page
// bounces between the nodes — run cmd/ivytrace to watch that happen.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	ivy "repro"
)

func main() {
	const (
		procs    = 4
		elements = 4096
	)
	cluster := ivy.New(ivy.Config{Processors: procs, Seed: 42})

	var total float64
	err := cluster.Run(func(p *ivy.Proc) {
		// Shared state: the data array, an accumulator cell, a lock for
		// it, and an eventcount to join the workers.
		data := p.MustMalloc(8 * elements)
		sumCell := p.MustMalloc(8)
		p.WriteF64(sumCell, 0)
		lock := p.NewLock()
		done := p.NewEventcount(procs + 1)

		for w := 0; w < procs; w++ {
			w := w
			p.CreateOn(w, func(q *ivy.Proc) {
				lo := w * elements / procs
				hi := (w + 1) * elements / procs
				part := 0.0
				vals := make([]float64, hi-lo)
				for i := lo; i < hi; i++ {
					vals[i-lo] = float64(i)
					part += float64(i)
				}
				q.LocalOps(2 * (hi - lo))
				// One bulk write checks access once per page run instead
				// of once per element.
				q.WriteF64s(data+uint64(8*lo), vals)
				// Mutual exclusion with the paper's idiom: test-and-set
				// on a shared byte.
				lock.Acquire(q)
				q.WriteF64(sumCell, q.ReadF64(sumCell)+part)
				lock.Release(q)
				done.Advance(q)
			}, ivy.WithName(fmt.Sprintf("worker%d", w)))
		}

		done.Wait(p, procs)
		total = p.ReadF64(sumCell)
	})
	if err != nil {
		log.Fatal(err)
	}

	want := float64(elements*(elements-1)) / 2
	fmt.Printf("sum = %.0f (want %.0f)\n", total, want)
	fmt.Printf("virtual time: %v on %d processors\n",
		cluster.Elapsed().Round(time.Microsecond), procs)
	s := cluster.Snapshot()
	fmt.Printf("coherence: %d read faults, %d write faults, %d invalidations, %d packets\n",
		s.Total().SVM.ReadFaults, s.Total().SVM.WriteFaults,
		s.Total().SVM.InvalSent, s.Packets)
}
