// The coherence manager algorithms side by side on one workload.
//
// Four nodes repeatedly read a shared page that one node keeps
// rewriting — the invalidation-heavy pattern where the algorithms'
// structural differences show: the dynamic distributed manager chases
// probOwner hints, the directory managers route every fault through a
// manager and confirm each transfer, the basic centralized manager
// additionally runs all invalidations at the manager, and the broadcast
// manager interrupts every node per fault.
//
//	go run ./examples/algorithms
package main

import (
	"fmt"
	"log"
	"time"

	ivy "repro"
)

func run(alg ivy.Algorithm) (time.Duration, ivy.ClusterStats) {
	cluster := ivy.New(ivy.Config{Processors: 4, Seed: 3, Algorithm: alg})
	err := cluster.Run(func(p *ivy.Proc) {
		addr := p.MustMalloc(1024)
		done := p.NewEventcount(8)
		// Node 0: the writer. Nodes 1-3: readers that refault after
		// every invalidation.
		p.CreateOn(0, func(q *ivy.Proc) {
			for k := 0; k < 30; k++ {
				q.WriteU64(addr, uint64(k))
				q.Sleep(20 * time.Millisecond)
			}
			done.Advance(q)
		}, ivy.WithName("writer"))
		for i := 1; i < 4; i++ {
			i := i
			p.CreateOn(i, func(q *ivy.Proc) {
				for k := 0; k < 30; k++ {
					_ = q.ReadU64(addr)
					q.Sleep(15 * time.Millisecond)
				}
				done.Advance(q)
			}, ivy.WithName(fmt.Sprintf("reader%d", i)))
		}
		done.Wait(p, 4)
	})
	if err != nil {
		log.Fatal(err)
	}
	return cluster.Elapsed(), cluster.Snapshot()
}

func main() {
	fmt.Printf("%-22s %-12s %-8s %-9s %-9s\n",
		"algorithm", "time", "faults", "forwards", "packets")
	for _, alg := range []ivy.Algorithm{
		ivy.DynamicDistributed,
		ivy.ImprovedCentralized,
		ivy.BasicCentralized,
		ivy.FixedDistributed,
		ivy.BroadcastManager,
	} {
		elapsed, s := run(alg)
		tot := s.Total()
		fmt.Printf("%-22v %-12s %-8d %-9d %-9d\n",
			alg, elapsed.Round(time.Millisecond), tot.Faults(), s.Forwards, s.Packets)
	}
	fmt.Println("\nSame program, same answer, five ways to find the owner — the")
	fmt.Println("packet column is the cost of each ownership-location strategy.")
}
