// Jacobi linear equation solver across a processor sweep — the paper's
// first benchmark program, scaled down to run in a second. Prints the
// speedup series, showing the near-linear behavior shared virtual memory
// gives compute-bound iterative solvers.
//
//	go run ./examples/jacobi [-n 256] [-iters 24] [-maxprocs 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	ivy "repro"
	"repro/internal/apps"
)

func main() {
	n := flag.Int("n", 512, "matrix dimension (512/procs doubles should fill whole pages)")
	iters := flag.Int("iters", 16, "Jacobi iterations")
	maxProcs := flag.Int("maxprocs", 4, "sweep processors 1..N")
	flag.Parse()

	par := apps.JacobiParams{N: *n, Iters: *iters, Seed: 7}
	fmt.Printf("solving a %dx%d system, %d iterations\n\n", *n, *n, *iters)
	fmt.Printf("%-6s %-14s %-8s %-12s\n", "procs", "virtual time", "speedup", "page faults")

	var t1 time.Duration
	for procs := 1; procs <= *maxProcs; procs++ {
		res, err := apps.RunJacobi(ivy.Config{Processors: procs, Seed: 1}, par)
		if err != nil {
			log.Fatalf("procs=%d: %v", procs, err)
		}
		if procs == 1 {
			t1 = res.Elapsed
		}
		fmt.Printf("%-6d %-14s %-8.2f %-12d\n",
			procs, res.Elapsed.Round(time.Millisecond),
			float64(t1)/float64(res.Elapsed), res.Stats.Total().Faults())
	}
	fmt.Println("\n(each iteration the solution vector's pages replicate read-only,")
	fmt.Println(" then each worker's writes invalidate the copies — the paper's")
	fmt.Println(" invalidation approach. Try -n 128: slices smaller than a page")
	fmt.Println(" false-share and the speedup collapses — page granularity matters)")
}
