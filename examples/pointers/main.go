// Passing complex data structures — the paper's core argument against
// message passing, live.
//
// "In contrast, a shared memory multiprocessor has no difficulty passing
// pointers because processors can share a single address space. ...
// Passing a list data structure simply requires passing a pointer."
//
// Node 0 builds a binary search tree of linked records in shared virtual
// memory. Node 1 receives just the root's ADDRESS (8 bytes) and runs
// searches by chasing pointers; the pages holding the visited records
// migrate to it on demand — no marshaling, no flattening, no stub code.
// A second round of searches on node 1 is then nearly free: the hot path
// of the tree has replicated into its local memory.
//
//	go run ./examples/pointers
package main

import (
	"fmt"
	"log"
	"time"

	ivy "repro"
)

// Record layout in shared memory:
//
//	+0:  key   (u64)
//	+8:  left  (u64 shared address; 0 = nil)
//	+16: right (u64 shared address; 0 = nil)
//	+24: value (u64)
const recordSize = 32

// insert adds key to the BST rooted at *root (allocating shared memory),
// returning the possibly-updated root address.
func insert(p *ivy.Proc, root uint64, key, value uint64) uint64 {
	node := p.MustMalloc(recordSize)
	p.WriteU64(node+0, key)
	p.WriteU64(node+8, 0)
	p.WriteU64(node+16, 0)
	p.WriteU64(node+24, value)
	if root == 0 {
		return node
	}
	cur := root
	for {
		ck := p.ReadU64(cur)
		slot := cur + 8 // left
		if key >= ck {
			slot = cur + 16 // right
		}
		next := p.ReadU64(slot)
		if next == 0 {
			p.WriteU64(slot, node) // link by storing an address
			return root
		}
		cur = next
	}
}

// search chases pointers from root; every hop may page-fault the record
// across the ring.
func search(q *ivy.Proc, root, key uint64) (uint64, bool) {
	cur := root
	for cur != 0 {
		ck := q.ReadU64(cur)
		if ck == key {
			return q.ReadU64(cur + 24), true
		}
		if key < ck {
			cur = q.ReadU64(cur + 8)
		} else {
			cur = q.ReadU64(cur + 16)
		}
	}
	return 0, false
}

func main() {
	const keys = 512
	cluster := ivy.New(ivy.Config{Processors: 2, Seed: 21})
	err := cluster.Run(func(p *ivy.Proc) {
		// Build the tree on node 0 with pseudo-random keys.
		var root uint64
		state := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < keys; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			root = insert(p, root, state%100000, uint64(i))
		}
		fmt.Printf("node 0 built a %d-record tree; handing node 1 one address: %#x\n\n", keys, root)

		done := p.NewEventcount(4)
		p.CreateOn(1, func(q *ivy.Proc) {
			s := q.Cluster().Snapshot()
			start := q.Now()
			hits := 0
			probe := uint64(0x9e3779b97f4a7c15)
			for i := 0; i < keys; i++ {
				probe ^= probe << 13
				probe ^= probe >> 7
				probe ^= probe << 17
				if _, ok := search(q, root, probe%100000); ok {
					hits++
				}
			}
			cold := q.Now() - start
			coldFaults := q.Cluster().Snapshot().Sub(s).Nodes[1].SVM.ReadFaults

			s = q.Cluster().Snapshot()
			start = q.Now()
			probe = uint64(0x9e3779b97f4a7c15)
			for i := 0; i < keys; i++ {
				probe ^= probe << 13
				probe ^= probe >> 7
				probe ^= probe << 17
				search(q, root, probe%100000)
			}
			warm := q.Now() - start
			warmFaults := q.Cluster().Snapshot().Sub(s).Nodes[1].SVM.ReadFaults

			fmt.Printf("node 1 searches (cold): %v, %d hits, %d page faults\n",
				cold.Round(time.Millisecond), hits, coldFaults)
			fmt.Printf("node 1 searches (warm): %v, %d page faults\n",
				warm.Round(time.Millisecond), warmFaults)
			fmt.Printf("\nthe tree was never serialized: the records' pages migrated on\n")
			fmt.Printf("demand and replicated read-only — \"passing a list data structure\n")
			fmt.Printf("simply requires passing a pointer\"\n")
			done.Advance(q)
		})
		done.Wait(p, 1)
	})
	if err != nil {
		log.Fatal(err)
	}
}
