package ivy_test

import (
	"reflect"
	"testing"
	"time"

	ivy "repro"
	"repro/internal/chaos/check"
	"repro/internal/harness"
)

// These tests pin the contract the -parallel plumbing claims everywhere
// it is documented: running independent clusters across host cores is a
// wall-clock optimization only. Every simulated observable — virtual
// times, fault and message counts, history and chaos digests, profile
// snapshots — must be bit-identical whether the sweep ran on one worker
// or many. Only the host-side Wall fields may differ, and those are
// scrubbed before comparing.

// TestChaosSweepParallelEquivalence runs the same chaos SC-checker sweep
// sequentially and on four workers and requires every Result — including
// HistoryDigest and ChaosDigest, the FNV-1a checksums over the full
// linearized history and fault schedule — to compare DeepEqual.
func TestChaosSweepParallelEquivalence(t *testing.T) {
	opts := &ivy.ChaosOpts{
		DuplicateProbability: 0.05,
		DuplicateDelay:       2 * time.Millisecond,
		DelayProbability:     0.05,
		MaxDelay:             2 * time.Millisecond,
		LossProbability:      0.05,
		BurstProbability:     0.01,
		BurstLength:          4,
		Crashes:              []ivy.NodeCrash{{Node: 2, At: 400 * time.Millisecond, Downtime: 900 * time.Millisecond}},
	}
	var cfgs []check.Config
	for _, alg := range []ivy.Algorithm{ivy.DynamicDistributed, ivy.ImprovedCentralized, ivy.BroadcastManager} {
		for seed := int64(1); seed <= 2; seed++ {
			cfgs = append(cfgs, check.Config{Algorithm: alg, Seed: seed, Chaos: opts})
		}
	}
	seq := check.Sweep(1, cfgs)
	par := check.Sweep(4, cfgs)
	for i := range cfgs {
		if seq[i].Failing() {
			t.Errorf("cfg %d (alg %v seed %d): sequential run failing: violations=%v coherence=%v err=%v",
				i, cfgs[i].Algorithm, cfgs[i].Seed, seq[i].Violations, seq[i].CoherenceErrs, seq[i].RunErr)
		}
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("cfg %d (alg %v seed %d): parallel sweep diverged from sequential:\nseq: %+v\npar: %+v",
				i, cfgs[i].Algorithm, cfgs[i].Seed, seq[i], par[i])
		}
	}
}

// scrubWall zeroes the one sanctioned nondeterministic field on every
// point so the curves can be compared whole.
func scrubWall(curves []harness.Curve) {
	for ci := range curves {
		for pi := range curves[ci].Points {
			curves[ci].Points[pi].Wall = 0
		}
	}
}

// TestFigure5CurveParallelEquivalence regenerates the paper's Figure 5
// curves (all five applications) with the harness sequential and then on
// four workers, with the coherence profiler armed so the profile
// snapshots are compared too. After scrubbing Wall, the curve sets must
// be DeepEqual — same virtual times, speedups, fault/packet/disk counts,
// and page-heat profiles.
func TestFigure5CurveParallelEquivalence(t *testing.T) {
	defer harness.SetParallel(0)
	defer harness.SetProfile(false)
	harness.SetProfile(true)
	procs := []int{1, 2}

	harness.SetParallel(1)
	seq, err := harness.Figure5(procs)
	if err != nil {
		t.Fatalf("sequential Figure5: %v", err)
	}
	harness.SetParallel(4)
	par, err := harness.Figure5(procs)
	if err != nil {
		t.Fatalf("parallel Figure5: %v", err)
	}

	scrubWall(seq)
	scrubWall(par)
	if !reflect.DeepEqual(seq, par) {
		for i := range seq {
			if i < len(par) && !reflect.DeepEqual(seq[i], par[i]) {
				t.Errorf("curve %q diverges between sequential and parallel harness runs:\nseq: %+v\npar: %+v",
					seq[i].Name, seq[i], par[i])
			}
		}
		if len(seq) != len(par) {
			t.Errorf("curve count diverges: sequential %d, parallel %d", len(seq), len(par))
		}
	}
}
