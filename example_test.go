package ivy_test

import (
	"fmt"

	ivy "repro"
)

// The basic pattern: allocate shared memory, spawn one process per
// processor, synchronize with an eventcount, read the results.
func ExampleCluster_Run() {
	cluster := ivy.New(ivy.Config{Processors: 4, Seed: 1})
	err := cluster.Run(func(p *ivy.Proc) {
		data := p.MustMalloc(8 * 4)
		done := p.NewEventcount(8)
		for i := 0; i < 4; i++ {
			i := i
			p.CreateOn(i, func(q *ivy.Proc) {
				q.WriteU64(data+uint64(8*i), uint64(i*i))
				done.Advance(q)
			})
		}
		done.Wait(p, 4)
		sum := uint64(0)
		for i := 0; i < 4; i++ {
			sum += p.ReadU64(data + uint64(8*i))
		}
		fmt.Println("sum:", sum)
	})
	if err != nil {
		panic(err)
	}
	// Output: sum: 14
}

// Eventcounts coordinate processes across nodes: workers advance, the
// main process waits for the count to arrive.
func ExampleEC() {
	cluster := ivy.New(ivy.Config{Processors: 2, Seed: 1})
	_ = cluster.Run(func(p *ivy.Proc) {
		ec := p.NewEventcount(8)
		p.CreateOn(1, func(q *ivy.Proc) {
			rec := q.AttachEventcount(ec.Addr(), 8)
			rec.Advance(q)
			rec.Advance(q)
		})
		ec.Wait(p, 2)
		fmt.Println("count:", ec.Read(p))
	})
	// Output: count: 2
}

// A test-and-set lock protects a read-modify-write that crosses nodes.
func ExampleLock() {
	cluster := ivy.New(ivy.Config{Processors: 2, Seed: 1})
	_ = cluster.Run(func(p *ivy.Proc) {
		counter := p.MustMalloc(8)
		lock := p.NewLock()
		done := p.NewEventcount(4)
		for i := 0; i < 2; i++ {
			i := i
			p.CreateOn(i, func(q *ivy.Proc) {
				for k := 0; k < 3; k++ {
					lock.Acquire(q)
					q.WriteU64(counter, q.ReadU64(counter)+1)
					lock.Release(q)
				}
				done.Advance(q)
			})
		}
		done.Wait(p, 2)
		fmt.Println("counter:", p.ReadU64(counter))
	})
	// Output: counter: 6
}

// A process can migrate itself; its shared-memory view is unchanged and
// its subsequent work bills the new node.
func ExampleProc_Migrate() {
	cluster := ivy.New(ivy.Config{Processors: 2, Seed: 1})
	_ = cluster.Run(func(p *ivy.Proc) {
		done := p.NewEventcount(4)
		p.Create(func(q *ivy.Proc) {
			before := q.NodeID()
			q.Migrate(1)
			fmt.Printf("moved from node %d to node %d\n", before, q.NodeID())
			done.Advance(q)
		})
		done.Wait(p, 1)
	})
	// Output: moved from node 0 to node 1
}

// A sequencer plus an eventcount is Reed & Kanodia's ordered mutual
// exclusion: take a ticket, await your turn, advance when done.
func ExampleSequencer() {
	cluster := ivy.New(ivy.Config{Processors: 2, Seed: 1})
	_ = cluster.Run(func(p *ivy.Proc) {
		seq := p.NewSequencer()
		turn := p.NewEventcount(8)
		done := p.NewEventcount(4)
		for i := 0; i < 2; i++ {
			i := i
			p.CreateOn(i, func(q *ivy.Proc) {
				t := seq.Ticket(q)
				turn.Wait(q, t)
				fmt.Println("ticket", t)
				turn.Advance(q)
				done.Advance(q)
			})
		}
		done.Wait(p, 2)
	})
	// Output:
	// ticket 0
	// ticket 1
}
