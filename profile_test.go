package ivy_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	ivy "repro"
	"repro/internal/apps"
	"repro/internal/metrics"
)

var updateGolden = flag.Bool("update-prof", false, "rewrite the profiling golden files")

// profWorkload is a small fixed workload with genuine page ping-pong:
// four processes take turns incrementing counters that share pages, so
// ownership migrates and the dirty-word maps see partial writes.
func profWorkload(cfg ivy.Config) (*ivy.Cluster, error) {
	cfg.Processors = 4
	cfg.PageSize = 256
	c := ivy.New(cfg)
	err := c.Run(func(p *ivy.Proc) {
		const slots = 8
		arr := p.MustMalloc(8 * slots)
		p.LabelRegion("counters", arr, 8*slots)
		for i := uint64(0); i < slots; i++ {
			p.WriteU64(arr+8*i, 0)
		}
		mu := p.NewLock()
		done := p.NewEventcount(8)
		for n := 1; n < 4; n++ {
			n := n
			p.CreateOn(n, func(q *ivy.Proc) {
				for round := 0; round < 5; round++ {
					for i := uint64(0); i < slots; i++ {
						mu.Acquire(q)
						v := q.ReadU64(arr + 8*i)
						q.WriteU64(arr+8*i, v+uint64(n))
						mu.Release(q)
					}
				}
				done.Advance(q)
			})
		}
		done.Wait(p, 3)
	})
	return c, err
}

// TestProfileGoldenProm pins the Prometheus exposition bytes for a fixed
// (seed, config): ordering, label layout, and float formatting are all
// part of the contract. Regenerate with `go test -run Golden -update .`
// after an intentional format change.
func TestProfileGoldenProm(t *testing.T) {
	c, err := profWorkload(ivy.Config{Seed: 42, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	export := metrics.Build(metrics.Meta{
		App:       "profworkload",
		Manager:   "dynamic",
		Coherence: "sc",
		Procs:     4,
		Seed:      42,
		PageSize:  256,
		ElapsedUS: c.Elapsed().Microseconds(),
	}, c.Snapshot(), c.MetricsSnapshot())

	var buf bytes.Buffer
	if err := export.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "profile_golden.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from %s (run with -update after intentional changes)\ngot:\n%s",
			golden, buf.String())
	}
}

// TestProfileReportDeterministic runs the matmul benchmark at 8 nodes
// with profiling on, twice, and requires bit-identical ranked reports —
// the acceptance bar cmd/ivyprof is held to in CI.
func TestProfileReportDeterministic(t *testing.T) {
	render := func() []byte {
		res, err := apps.RunMatmul(ivy.Config{
			Processors: 8, Seed: 1, Profile: true,
		}, apps.DefaultMatmul())
		if err != nil {
			t.Fatal(err)
		}
		export := metrics.Build(metrics.Meta{
			App: "matmul", Manager: "dynamic", Procs: 8, Seed: 1,
			PageSize:  1024,
			ElapsedUS: res.Elapsed.Microseconds(),
		}, res.Stats, res.Metrics)
		var buf bytes.Buffer
		export.WriteTopPages(&buf, 10)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same (seed, config) produced different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty report")
	}
}

// TestProfileDoesNotPerturbRun pins the observer-effect contract: arming
// the profiler must leave virtual time, fault counts, and wire traffic
// bit-identical to an unprofiled run of the same (seed, config).
// (Profile implies DisableTLB, but the TLB only short-circuits wall-clock
// work — virtual time is charged identically either way.)
func TestProfileDoesNotPerturbRun(t *testing.T) {
	off, err := profWorkload(ivy.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	on, err := profWorkload(ivy.Config{Seed: 9, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Elapsed() != on.Elapsed() {
		t.Fatalf("profiling changed virtual time: %v vs %v", off.Elapsed(), on.Elapsed())
	}
	if off.ChaosDigest() != on.ChaosDigest() {
		t.Fatalf("profiling changed the chaos digest: %#x vs %#x", off.ChaosDigest(), on.ChaosDigest())
	}
	so, sn := off.Snapshot(), on.Snapshot()
	if so.Packets != sn.Packets || so.NetBytes != sn.NetBytes {
		t.Fatalf("profiling changed wire traffic: %d/%d vs %d/%d packets/bytes",
			so.Packets, so.NetBytes, sn.Packets, sn.NetBytes)
	}
	to, tn := so.Total(), sn.Total()
	if to.SVM.ReadFaults != tn.SVM.ReadFaults || to.SVM.WriteFaults != tn.SVM.WriteFaults {
		t.Fatalf("profiling changed fault counts: %d/%d vs %d/%d read/write",
			to.SVM.ReadFaults, to.SVM.WriteFaults, tn.SVM.ReadFaults, tn.SVM.WriteFaults)
	}
	if off.MetricsSnapshot() != nil {
		t.Fatal("MetricsSnapshot non-nil with Profile off")
	}
	if on.MetricsSnapshot() == nil {
		t.Fatal("MetricsSnapshot nil with Profile on")
	}
}
