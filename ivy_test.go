package ivy

import (
	"fmt"
	"testing"
	"time"
)

func TestSingleNodeHelloWorld(t *testing.T) {
	c := New(Config{Processors: 1, Seed: 1})
	var got float64
	err := c.Run(func(p *Proc) {
		addr := p.MustMalloc(1024)
		p.WriteF64(addr, 2.5)
		got = p.ReadF64(addr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Fatalf("got %v", got)
	}
	if c.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestParallelSharedSum(t *testing.T) {
	// The quickstart pattern: N workers fill slots, main sums them.
	const n = 4
	c := New(Config{Processors: n, Seed: 1})
	var sum float64
	err := c.Run(func(p *Proc) {
		data := p.MustMalloc(8 * n)
		done := p.NewEventcount(n + 1)
		for i := 0; i < n; i++ {
			i := i
			p.CreateOn(i, func(q *Proc) {
				if q.NodeID() != i {
					t.Errorf("worker %d on node %d", i, q.NodeID())
				}
				q.WriteF64(data+uint64(8*i), float64(i+1))
				done.Advance(q)
			}, WithName(fmt.Sprintf("w%d", i)))
		}
		done.Wait(p, n)
		for i := 0; i < n; i++ {
			sum += p.ReadF64(data + uint64(8*i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("sum = %v, want 10", sum)
	}
}

func TestRunDetectsRunaway(t *testing.T) {
	c := New(Config{Processors: 1, Seed: 1, Horizon: time.Second})
	err := c.Run(func(p *Proc) {
		for {
			p.Sleep(time.Minute)
		}
	})
	if err == nil {
		t.Fatal("runaway program did not fail")
	}
}

func TestSpeedupIsRealOnEmbarrassinglyParallelWork(t *testing.T) {
	// Independent compute on P processors must take ~1/P the virtual
	// time — the basic sanity behind every speedup curve.
	elapsed := map[int]time.Duration{}
	for _, procs := range []int{1, 4} {
		c := New(Config{Processors: procs, Seed: 1})
		err := c.Run(func(p *Proc) {
			done := p.NewEventcount(procs + 1)
			for i := 0; i < procs; i++ {
				i := i
				p.CreateOn(i, func(q *Proc) {
					q.Compute(10 * time.Second / time.Duration(procs))
					done.Advance(q)
				})
			}
			done.Wait(p, int64(procs))
		})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[procs] = c.Elapsed()
	}
	speedup := float64(elapsed[1]) / float64(elapsed[4])
	if speedup < 3.2 || speedup > 4.2 {
		t.Fatalf("speedup on independent work = %.2f (t1=%v t4=%v), want ~4",
			speedup, elapsed[1], elapsed[4])
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, uint64) {
		c := New(Config{Processors: 3, Seed: 42})
		_ = c.Run(func(p *Proc) {
			data := p.MustMalloc(4096)
			done := p.NewEventcount(8)
			for i := 0; i < 3; i++ {
				i := i
				p.CreateOn(i, func(q *Proc) {
					for k := 0; k < 20; k++ {
						q.WriteU64(data+uint64(8*((i+k)%16)), uint64(k))
					}
					done.Advance(q)
				})
			}
			done.Wait(p, 3)
		})
		s := c.Snapshot()
		return c.Elapsed(), s.Packets
	}
	e1, p1 := run()
	e2, p2 := run()
	if e1 != e2 || p1 != p2 {
		t.Fatalf("same-seed runs diverged: %v/%d vs %v/%d", e1, p1, e2, p2)
	}
}

func TestLockMutualExclusionAcrossCluster(t *testing.T) {
	const n = 4
	c := New(Config{Processors: n, Seed: 1})
	var final uint64
	err := c.Run(func(p *Proc) {
		counter := p.MustMalloc(8)
		lock := p.NewLock()
		done := p.NewEventcount(n + 1)
		for i := 0; i < n; i++ {
			i := i
			p.CreateOn(i, func(q *Proc) {
				for k := 0; k < 5; k++ {
					lock.Acquire(q)
					v := q.ReadU64(counter)
					q.Compute(time.Millisecond)
					q.WriteU64(counter, v+1)
					lock.Release(q)
				}
				done.Advance(q)
			})
		}
		done.Wait(p, n)
		final = p.ReadU64(counter)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 5*n {
		t.Fatalf("counter = %d, want %d", final, 5*n)
	}
}

func TestSnapshotDeltas(t *testing.T) {
	c := New(Config{Processors: 2, Seed: 1})
	var before, after ClusterStats
	err := c.Run(func(p *Proc) {
		data := p.MustMalloc(1024)
		p.WriteU64(data, 1)
		before = c.Snapshot()
		done := p.NewEventcount(4)
		p.CreateOn(1, func(q *Proc) {
			_ = q.ReadU64(data) // one coherence read fault
			done.Advance(q)
		})
		done.Wait(p, 1)
		after = c.Snapshot()
	})
	if err != nil {
		t.Fatal(err)
	}
	d := after.Sub(before)
	if d.Nodes[1].SVM.ReadFaults == 0 {
		t.Fatal("delta lost the read fault")
	}
	if d.Packets == 0 {
		t.Fatal("delta lost network traffic")
	}
}

func TestLoadBalancingEndToEnd(t *testing.T) {
	// Create everything on node 0 with system scheduling; the balancer
	// must spread compute across 4 nodes for near-4x speedup.
	elapsed := map[int]time.Duration{}
	for _, procs := range []int{1, 4} {
		bal := DefaultBalance()
		c := New(Config{Processors: procs, Seed: 7, Balance: &bal})
		err := c.Run(func(p *Proc) {
			done := p.NewEventcount(32)
			const workers = 8
			for i := 0; i < workers; i++ {
				p.Create(func(q *Proc) {
					q.Compute(2 * time.Second)
					done.Advance(q)
				}, WithName(fmt.Sprintf("w%d", i)))
			}
			done.Wait(p, workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[procs] = c.Elapsed()
	}
	speedup := float64(elapsed[1]) / float64(elapsed[4])
	if speedup < 2.0 {
		t.Fatalf("load-balanced speedup = %.2f (t1=%v t4=%v); balancer not spreading work",
			speedup, elapsed[1], elapsed[4])
	}
}

func TestMemoryPressureEndToEnd(t *testing.T) {
	// Constrained frames force disk traffic on one node; a second node's
	// memory relieves it — the Figure 4 mechanism in miniature.
	transfers := map[int]uint64{}
	elapsed := map[int]time.Duration{}
	for _, procs := range []int{1, 2} {
		c := New(Config{Processors: procs, Seed: 1, MemoryPages: 64, SharedPages: 512})
		err := c.Run(func(p *Proc) {
			// 96 pages of data > 64 frames on one node.
			data := p.MustMalloc(96 * 1024)
			done := p.NewEventcount(8)
			for w := 0; w < procs; w++ {
				w := w
				p.CreateOn(w, func(q *Proc) {
					// Each worker sweeps its half (or all, for 1 proc).
					span := 96 / procs
					for iter := 0; iter < 3; iter++ {
						for pg := w * span; pg < (w+1)*span; pg++ {
							addr := data + uint64(pg*1024)
							q.WriteU64(addr, q.ReadU64(addr)+1)
						}
					}
					done.Advance(q)
				})
			}
			done.Wait(p, int64(procs))
		})
		if err != nil {
			t.Fatal(err)
		}
		transfers[procs] = c.Snapshot().Total().DiskTransfers()
		elapsed[procs] = c.Elapsed()
	}
	if transfers[1] == 0 {
		t.Fatal("one-node run did not thrash")
	}
	if transfers[2] >= transfers[1] {
		t.Fatalf("two-node disk transfers %d >= one-node %d; combined memory not helping",
			transfers[2], transfers[1])
	}
	if elapsed[2] >= elapsed[1] {
		t.Fatalf("no speedup from relieved memory pressure: %v vs %v", elapsed[2], elapsed[1])
	}
}

func TestPageTraceObservesCoherenceLifecycle(t *testing.T) {
	c := New(Config{Processors: 2, Seed: 1})
	var sites []string
	var addr uint64
	err := func() error {
		// Allocate first so we know the page, then install the tracer
		// via a fixed address: allocation is deterministic, so the first
		// Malloc lands at the base of the shared space.
		c.SetPageTrace(c.Base(), func(ev PageEvent) {
			sites = append(sites, ev.Site)
		})
		return c.Run(func(p *Proc) {
			addr = p.MustMalloc(8)
			if addr != c.Base() {
				t.Errorf("first allocation at %#x, want base %#x", addr, c.Base())
			}
			p.WriteU64(addr, 1)
			done := p.NewEventcount(4)
			p.CreateOn(1, func(q *Proc) {
				_ = q.ReadU64(addr) // remote read fault
				q.WriteU64(addr, 2) // upgrade-to-ownership
				done.Advance(q)
			})
			done.Wait(p, 1)
		})
	}()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, s := range sites {
		want[s] = true
	}
	for _, s := range []string{"readFault>", "readFault<", "serveRead", "writeFault>", "writeFault<", "serveWrite"} {
		if !want[s] {
			t.Errorf("trace missing site %q (got %v)", s, sites)
		}
	}
}
