package ivy

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/parallel"
)

// tlbTraceResult is everything a run observes: the simulated outcome
// must be bit-identical with the software TLB on and off. sums holds a
// checksum of every value each worker read plus a final sweep of the
// shared region — equal timing and fault counts alone would not catch
// a stale TLB hit that returns wrong bytes, since such a hit performs
// the same charges and messages as a correct one.
type tlbTraceResult struct {
	elapsed time.Duration
	stats   ClusterStats
	sums    []uint64
}

// runTLBTrace executes a randomized shared-memory trace — scalar and
// bulk reads/writes, word copies, test-and-set, and a migrating worker —
// on a memory-constrained cluster (so evictions happen) and returns the
// simulated outcome. A non-nil chaos arms the fault plane for the run.
// It returns errors instead of failing a *testing.T so the property
// sweeps can run it from parallel.Map worker goroutines (t.Fatalf is
// only legal on the test goroutine).
func runTLBTrace(alg Algorithm, seed int64, disableTLB bool, chaos *ChaosOpts) (tlbTraceResult, error) {
	const (
		workers = 4
		words   = 512 // trace footprint: 16 pages of 256 B
		ops     = 300
	)
	c := New(Config{
		Processors:  workers,
		PageSize:    256,
		SharedPages: 128,
		MemoryPages: 48, // tight enough to force evictions
		Algorithm:   alg,
		Seed:        seed,
		DisableTLB:  disableTLB,
		Chaos:       chaos,
	})
	// sums[w] is worker w's running checksum of every value it read;
	// sums[workers] is the hopper's, sums[workers+1] a final sweep of
	// the whole region. The mix must depend on order, so a transposed
	// pair of reads cannot cancel.
	sums := make([]uint64, workers+2)
	mix := func(h, v uint64) uint64 {
		h ^= v
		h *= 0x100000001B3 // FNV-64 prime
		return h
	}
	err := c.Run(func(p *Proc) {
		base := p.MustMalloc(8 * words)
		done := p.NewEventcount(workers + 2)
		for w := 0; w < workers; w++ {
			w := w
			p.CreateOn(w, func(q *Proc) {
				rng := uint64(seed)*0x9E3779B97F4A7C15 + uint64(w+1)
				next := func() uint64 {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					return rng
				}
				sum := uint64(14695981039346656037) // FNV-64 offset basis
				buf := make([]uint64, 24)
				for op := 0; op < ops; op++ {
					i := next() % words
					switch next() % 6 {
					case 0:
						q.WriteU64(base+8*i, next())
					case 1:
						sum = mix(sum, q.ReadU64(base+8*i))
					case 2:
						n := uint64(len(buf))
						if i+n > words {
							n = words - i
						}
						q.ReadU64s(base+8*i, buf[:n])
						for _, v := range buf[:n] {
							sum = mix(sum, v)
						}
					case 3:
						n := uint64(len(buf))
						if i+n > words {
							n = words - i
						}
						q.WriteU64s(base+8*i, buf[:n])
					case 4:
						j := next() % words
						n := uint64(16)
						if i+n > words {
							n = words - i
						}
						if j+n > words {
							n = words - j
						}
						q.CopyWords(base+8*j, base+8*i, int(n))
					case 5:
						if q.TestAndSet(base + 8*i) {
							sum = mix(sum, 1)
						} else {
							sum = mix(sum, 0)
						}
					}
				}
				sums[w] = sum
				done.Advance(q)
			}, WithName(fmt.Sprintf("w%d", w)), NotMigratable())
		}
		// A migrating worker exercises the TLB's SVM rebinding: its
		// cached translations must die when it lands on another node.
		p.Create(func(q *Proc) {
			sum := uint64(14695981039346656037)
			for hop := 0; hop < 3; hop++ {
				q.Migrate((q.NodeID() + 1) % workers)
				for k := 0; k < 32; k++ {
					a := base + 8*uint64((hop*37+k*5)%words)
					v := q.ReadU64(a)
					sum = mix(sum, v)
					q.WriteU64(a, v+1)
				}
			}
			sums[workers] = sum
			done.Advance(q)
		}, WithName("hopper"))
		done.Wait(p, workers+1)
		// Final sweep: the region's end-state contents must also match.
		final := make([]uint64, words)
		p.ReadU64s(base, final)
		sum := uint64(14695981039346656037)
		for _, v := range final {
			sum = mix(sum, v)
		}
		sums[workers+1] = sum
	})
	if err != nil {
		return tlbTraceResult{}, fmt.Errorf("%v trace (tlb disabled=%v): %w", alg, disableTLB, err)
	}
	if errs := c.VerifyCoherence(); len(errs) != 0 {
		return tlbTraceResult{}, fmt.Errorf("%v trace (tlb disabled=%v): coherence: %v", alg, disableTLB, errs)
	}
	return tlbTraceResult{elapsed: c.Elapsed(), stats: c.Snapshot(), sums: sums}, nil
}

// tlbPair is one seed's on/off outcome pair from a parallel sweep.
type tlbPair struct {
	on, off tlbTraceResult
	err     error
}

// runTLBPairs runs the on/off trace pair for every seed, spreading the
// seeds across host cores (workers resolves through parallel.Workers, so
// 0 means one per core). Each pair lands in its seed's slot, so the
// comparison loop below is identical to the old sequential sweep.
func runTLBPairs(workers int, alg Algorithm, seeds []int64, chaos *ChaosOpts) []tlbPair {
	return parallel.Map(parallel.Workers(workers), len(seeds), func(i int) tlbPair {
		on, err := runTLBTrace(alg, seeds[i], false, chaos)
		if err != nil {
			return tlbPair{err: err}
		}
		off, err := runTLBTrace(alg, seeds[i], true, chaos)
		if err != nil {
			return tlbPair{err: err}
		}
		return tlbPair{on: on, off: off}
	})
}

// TestTLBSweepParallelEquivalence pins that spreading the property sweep
// across host cores changes nothing but wall-clock: the same seeds run
// on one worker and on four must produce DeepEqual pairs — virtual
// times, full cluster statistics, and every FNV read-data checksum.
func TestTLBSweepParallelEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3}
	seq := runTLBPairs(1, DynamicDistributed, seeds, nil)
	par := runTLBPairs(4, DynamicDistributed, seeds, nil)
	for i := range seeds {
		if seq[i].err != nil || par[i].err != nil {
			t.Fatalf("seed %d: seq err %v, par err %v", seeds[i], seq[i].err, par[i].err)
		}
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("seed %d: parallel sweep diverged from sequential:\nseq: %+v\npar: %+v",
				seeds[i], seq[i], par[i])
		}
	}
}

var tlbAlgs = map[string]Algorithm{
	"DynamicDistributed":  DynamicDistributed,
	"ImprovedCentralized": ImprovedCentralized,
	"FixedDistributed":    FixedDistributed,
	"BroadcastManager":    BroadcastManager,
	"BasicCentralized":    BasicCentralized,
}

// TestTLBDeterminism is the shootdown property test: the same randomized
// trace must produce bit-identical virtual time, fault counts, message
// counts, and every other simulated statistic with the software TLB on
// and off, across every manager algorithm. A stale TLB entry surviving
// any coherence transition would skip a fault and diverge here.
func TestTLBDeterminism(t *testing.T) {
	for name, alg := range tlbAlgs {
		alg := alg
		t.Run(name, func(t *testing.T) {
			seeds := []int64{1, 2, 3}
			for i, pr := range runTLBPairs(0, alg, seeds, nil) {
				seed, on, off := seeds[i], pr.on, pr.off
				if pr.err != nil {
					t.Fatal(pr.err)
				}
				if on.elapsed != off.elapsed {
					t.Errorf("seed %d: virtual time diverges: TLB on %v, off %v",
						seed, on.elapsed, off.elapsed)
				}
				if !reflect.DeepEqual(on.stats, off.stats) {
					t.Errorf("seed %d: cluster statistics diverge with TLB on vs off:\non:  %+v\noff: %+v",
						seed, on.stats.Total().SVM, off.stats.Total().SVM)
				}
				if !reflect.DeepEqual(on.sums, off.sums) {
					t.Errorf("seed %d: read-data checksums diverge with TLB on vs off (stale TLB data):\non:  %v\noff: %v",
						seed, on.sums, off.sums)
				}
			}
		})
	}
}

// TestTLBDeterminismUnderChaos repeats the shootdown property with the
// fault plane armed: duplicated, delayed, and lost frames force
// retransmissions, forwarded retries, and repeated invalidations — paths
// a clean run never takes. Because fault draws come from the same engine
// PRNG and the TLB is invisible to the network, the whole simulated
// outcome (virtual time, statistics, and every byte read) must still be
// bit-identical with the TLB on and off. A TLB entry surviving a
// duplicated or retransmitted invalidation would diverge only here.
func TestTLBDeterminismUnderChaos(t *testing.T) {
	chaos := &ChaosOpts{
		DuplicateProbability: 0.04,
		DuplicateDelay:       2 * time.Millisecond,
		DelayProbability:     0.04,
		MaxDelay:             2 * time.Millisecond,
		LossProbability:      0.04,
		BurstProbability:     0.005,
		BurstLength:          3,
	}
	for name, alg := range tlbAlgs {
		alg := alg
		t.Run(name, func(t *testing.T) {
			seeds := []int64{1, 2}
			for i, pr := range runTLBPairs(0, alg, seeds, chaos) {
				seed, on, off := seeds[i], pr.on, pr.off
				if pr.err != nil {
					t.Fatal(pr.err)
				}
				if on.elapsed != off.elapsed {
					t.Errorf("seed %d: virtual time diverges under chaos: TLB on %v, off %v",
						seed, on.elapsed, off.elapsed)
				}
				if !reflect.DeepEqual(on.stats, off.stats) {
					t.Errorf("seed %d: cluster statistics diverge under chaos with TLB on vs off:\non:  %+v\noff: %+v",
						seed, on.stats.Total().SVM, off.stats.Total().SVM)
				}
				if !reflect.DeepEqual(on.sums, off.sums) {
					t.Errorf("seed %d: read-data checksums diverge under chaos (stale TLB data):\non:  %v\noff: %v",
						seed, on.sums, off.sums)
				}
			}
		})
	}
}
