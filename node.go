package ivy

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/remop"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpnet"
)

// NodeConfig assembles ONE node of a multi-process IVY cluster: this
// process hosts a single rank and reaches the others over real TCP.
// Every process of a cluster must be started with the same Config
// (page geometry, algorithm, cost model) and the same Peers map, or the
// protocol's address arithmetic and manager routing disagree.
type NodeConfig struct {
	// Config is the shared cluster configuration. Processors is the
	// total cluster size (the number of cooperating OS processes), not
	// this process's share of it. The simulator-only planes — loss
	// injection, chaos, tracing, the race detector, the profiler — are
	// rejected: they need a global view no single process has.
	Config

	// Rank is this process's node id, in [0, Processors).
	Rank int

	// Listen is the TCP address to bind (e.g. ":7000" or
	// "127.0.0.1:7000"). Empty means the Peers entry for Rank.
	Listen string

	// Peers maps every OTHER rank to its advertised address. An entry
	// for Rank itself is allowed (and is the default Listen address).
	Peers map[int]string
}

// NewNode builds this process's share of a multi-process cluster: one
// SVM, one process manager, one allocator attachment, all wired to a
// tcpnet station instead of the simulated ring. The returned Cluster is
// used exactly like a simulated one — call Run once — but Run's main
// function starts on THIS rank, on every process: programs are SPMD,
// rendezvousing through eventcounts at agreed shared addresses
// (ec.Attach works on never-written memory, so no rank needs to win an
// initialization race). Remote process creation and migration cannot
// cross OS processes — closures do not serialize — so CreateOn to
// another rank panics and load balancing is forced off.
//
// Returns the cluster and the bound listen address (useful with ":0").
func NewNode(nc NodeConfig) (*Cluster, string, error) {
	cfg := nc.Config.withDefaults()
	if cfg.Processors < 1 || cfg.Processors > 64 {
		return nil, "", fmt.Errorf("ivy: %d processors out of range [1,64]", cfg.Processors)
	}
	if nc.Rank < 0 || nc.Rank >= cfg.Processors {
		return nil, "", fmt.Errorf("ivy: rank %d out of range [0,%d)", nc.Rank, cfg.Processors)
	}
	if cfg.LossProbability > 0 || cfg.Chaos != nil || cfg.Trace != nil || cfg.DRace || cfg.Profile {
		return nil, "", fmt.Errorf("ivy: loss, chaos, tracing, drace, and profiling are simulator planes; not available in a multi-process node")
	}
	if cfg.Coherence == CoherenceRC {
		// The quiescent-state digest and the cross-node master-copy view
		// need every SVM in one process; tcp-loopback supports RC, separate
		// OS processes do not (yet).
		return nil, "", fmt.Errorf("ivy: release consistency requires a single-process cluster view; use the sim or tcp-loopback transport")
	}
	// Migration serializes a PCB, not a Go closure; it cannot leave the
	// process. Passive balancing would try, so force it off — but keep
	// the default Interval: the null process sleeps that long between
	// idle passes, and a zero interval would spin at one virtual instant
	// forever, starving the wall-clock-anchored TCP deliveries (which
	// are always scheduled at the driver's current virtual time, ahead
	// of a frozen engine clock).
	bal := DefaultBalance()
	bal.Enabled = false
	bal.HintPeriod = 0
	bal.PCBGC = false
	cfg.Balance = &bal

	eng := sim.New(cfg.Seed)
	drv := tcpnet.NewDriver(cfg.TimeScale)
	nd := tcpnet.New(eng, drv, ring.NodeID(nc.Rank), cfg.Processors, tcpnet.Options{})
	listen := nc.Listen
	if listen == "" {
		listen = nc.Peers[nc.Rank]
	}
	bound, err := nd.Listen(listen)
	if err != nil {
		drv.Close()
		return nil, "", fmt.Errorf("ivy: node listen: %w", err)
	}
	for r, addr := range nc.Peers {
		if r == nc.Rank {
			continue
		}
		if r < 0 || r >= cfg.Processors {
			nd.Close()
			drv.Close()
			return nil, "", fmt.Errorf("ivy: peer rank %d out of range [0,%d)", r, cfg.Processors)
		}
		nd.SetPeer(ring.NodeID(r), addr)
	}
	for r := 0; r < cfg.Processors; r++ {
		if r != nc.Rank && nc.Peers[r] == "" {
			nd.Close()
			drv.Close()
			return nil, "", fmt.Errorf("ivy: no peer address for rank %d", r)
		}
	}
	eng.SetExternal(drv)

	c := &Cluster{cfg: cfg, eng: eng, nd: nd, nddrv: drv, tps: []ring.Transport{nd}}
	cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", nc.Rank), 1)
	ep := remop.NewEndpoint(eng, nd, ring.NodeID(nc.Rank), cpu, *cfg.Costs, func() uint8 { return 0 })
	st := &stats.Node{}
	svm := core.New(eng, ep, cpu, core.Config{
		Node:                  ring.NodeID(nc.Rank),
		PageSize:              cfg.PageSize,
		NumPages:              cfg.SharedPages,
		MemPages:              cfg.MemoryPages,
		DefaultOwner:          0,
		Algorithm:             cfg.Algorithm,
		Costs:                 *cfg.Costs,
		BroadcastInvalidation: cfg.BroadcastInvalidation,
	}, st)
	c.svms = append(c.svms, svm)
	c.sts = append(c.sts, st)
	c.allocs = append(c.allocs, alloc.New(ep, alloc.Config{
		Central:   0,
		Base:      svm.Base(),
		Size:      uint64(cfg.SharedPages) * uint64(cfg.PageSize),
		PageSize:  cfg.PageSize,
		TwoLevel:  cfg.TwoLevelAlloc,
		ChunkSize: cfg.ChunkBytes,
	}))
	nd.SetDownHook(func(peer ring.NodeID, down bool) {
		ep.MarkNodeDown(peer, down)
	})
	c.procs = proc.NewCluster(eng, c.svms, *cfg.Balance)
	c.procs.SetDisableTLB(cfg.DisableTLB)
	return c, bound, nil
}
