package ivy

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proc"
	"repro/internal/stats"
)

// Algorithm selects the memory-coherence manager; see the constants.
type Algorithm = core.Algorithm

// Manager algorithms, re-exported from the coherence core.
const (
	// DynamicDistributed is the probOwner-hint algorithm the paper finds
	// most appropriate; it is the default.
	DynamicDistributed = core.DynamicDistributed
	// ImprovedCentralized keeps ownership information on one manager.
	ImprovedCentralized = core.ImprovedCentralized
	// FixedDistributed statically partitions manager duty (H(p) = p mod N).
	FixedDistributed = core.FixedDistributed
	// BroadcastManager locates owners by broadcast (ablation).
	BroadcastManager = core.BroadcastManager
	// BasicCentralized is the unimproved centralized manager from the
	// companion TOCS paper (copyset and invalidation at the manager) —
	// the baseline that makes "improved" measurable.
	BasicCentralized = core.BasicCentralized
)

// Costs is the virtual-time cost model; see internal/model for the
// calibration rationale.
type Costs = model.Costs

// Default1988 is the calibration used for the headline experiments.
func Default1988() Costs { return model.Default1988() }

// FreeNetwork zeroes communication costs (used by Figure 6's argument
// that merge-split sort is sub-linear even with free communication).
func FreeNetwork() Costs { return model.FreeNetwork() }

// SystemMode1988 is the paper's projected in-kernel implementation:
// remote operations and page moving roughly twice as fast.
func SystemMode1988() Costs { return model.SystemMode1988() }

// Balance tunes passive load balancing; see internal/proc.
type Balance = proc.BalanceConfig

// DefaultBalance is the balancing configuration used by the experiments.
func DefaultBalance() Balance { return proc.DefaultBalance() }

// NodeStats is one node's counter block.
type NodeStats = stats.Node

// ClusterStats is a cluster-wide snapshot; snapshots subtract to give
// interval deltas (Table 1 works this way).
type ClusterStats = stats.Cluster

// Latency carries the fault-service histograms (read fault, write
// fault, upgrade, disk fault, invalidation round) merged across nodes.
type Latency = stats.Latency

// TraceConfig turns on the protocol span tracer for a cluster built
// from a Config — the declarative alternative to calling StartTrace.
type TraceConfig struct {
	// W, when non-nil, receives the Perfetto/Chrome trace-event JSON
	// when Run finishes (openable in ui.perfetto.dev).
	W io.Writer

	// SampleInterval, when positive, records the time-series sampler
	// (in-flight faults, ring utilization, resident frames, runnable
	// processes) every interval of virtual time.
	SampleInterval time.Duration
}

// Transport backends for Config.Transport.
const (
	// TransportSim (the default) is the deterministic simulated token
	// ring: virtual time, seeded loss/chaos injection, bit-for-bit
	// reproducible runs.
	TransportSim = "sim"

	// TransportTCPLoopback runs the identical protocol stack over real
	// TCP connections on 127.0.0.1: every frame crosses actual sockets,
	// one listener per node, all inside this process and one engine.
	// The engine is host-paced (see internal/tcpnet.Driver), so runs
	// are no longer deterministic; the simulator-only planes — loss
	// injection, chaos, span tracing — are rejected. This is the
	// cross-transport conformance configuration; fully separate
	// processes use cmd/ivynode instead.
	TransportTCPLoopback = "tcp-loopback"
)

// Coherence modes for Config.Coherence.
const (
	// CoherenceSC (the default, "") is IVY's write-invalidate sequential
	// consistency: single writer, ownership managers, invalidation on
	// every write fault.
	CoherenceSC = "sc"

	// CoherenceRC is TreadMarks-style release consistency (see
	// internal/rc and DESIGN.md §14): write faults copy a twin instead of
	// invalidating readers, writes accumulate locally, and word-level
	// diffs ship at synchronization releases. Data pages have static
	// homes; synchronization objects live in a separate SC sync arena.
	// Programs that are race-free (drace-clean) produce results
	// bit-identical to SC mode.
	CoherenceRC = "rc"
)

// Config assembles a cluster. The zero value of every field has a
// sensible default applied by New.
type Config struct {
	// Processors is the cluster size (default 1, max 64).
	Processors int

	// Coherence selects the memory-consistency protocol: CoherenceSC
	// (the default, "") or CoherenceRC. See the constants.
	Coherence string

	// Transport selects the interconnect backend: TransportSim (the
	// default, "") or TransportTCPLoopback. See the constants.
	Transport string

	// TimeScale compresses wall time for TCP transports: one wall
	// microsecond advances virtual time by TimeScale microseconds
	// (default tcpnet.DefaultScale). Ignored by the simulated ring.
	TimeScale int64

	// PageSize in bytes; the prototype used 1 KB (the default).
	PageSize int

	// SharedPages sizes the shared virtual address space (default 16384
	// pages = 16 MB at the default page size).
	SharedPages int

	// MemoryPages caps each node's physical frames; 0 means
	// unconstrained. The memory-pressure experiments set this.
	MemoryPages int

	// Algorithm selects the coherence manager (default
	// DynamicDistributed).
	Algorithm Algorithm

	// Costs calibrates virtual time (default Default1988).
	Costs *Costs

	// Balance configures passive load balancing (default
	// DefaultBalance). Set Balance.Enabled = false for manual
	// scheduling only.
	Balance *Balance

	// StackPages is the simulated stack region per process (default 4
	// pages; 0 disables stack regions).
	StackPages int

	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64

	// LossProbability injects per-delivery packet loss (default 0),
	// exercising the retransmission protocol.
	LossProbability float64

	// Chaos, when non-nil, installs the fault plane: duplication, delay
	// jitter, independent and burst loss, and crash/restart schedules,
	// all drawn from Seed so faulty runs replay bit-for-bit. Nil — the
	// default — costs nothing at run time. See internal/chaos.
	Chaos *ChaosOpts

	// BroadcastInvalidation switches write-fault invalidation to the
	// broadcast reply-from-all scheme.
	BroadcastInvalidation bool

	// TwoLevelAlloc enables the two-level memory allocation scheme the
	// paper proposes; ChunkBytes sets the local chunk size (default
	// 64 KB).
	TwoLevelAlloc bool
	ChunkBytes    uint64

	// DisableTLB turns off the per-process software translation caches,
	// forcing every shared-memory access through the full checked path.
	// Simulated behaviour (virtual time, fault and message counts) is
	// identical either way — the TLB is a wall-clock optimization only,
	// and the property test in tlb_prop_test.go holds it to that.
	DisableTLB bool

	// DRace arms the dynamic happens-before data-race detector (see
	// internal/drace and DESIGN.md §10): accesses unordered by program
	// synchronization — eventcounts, sequencers, test-and-set locks,
	// spawn/join, migration — are collected as reports (RaceReports). It
	// implies DisableTLB so every access reaches an instrumented checked
	// path; schedules and message counts are unchanged, and the only
	// virtual-time effect is the wire time of vector clocks piggybacked
	// on NotifyReq/MigrateReq (see PROTOCOL.md). False — the default —
	// costs one predicted branch per access.
	DRace bool

	// Profile arms the coherence profiler (see internal/metrics and
	// DESIGN.md §11): per-page fault/invalidation/transfer counters,
	// ownership ping-pong intervals, and the dirty-word maps that
	// quantify false sharing, exposed through MetricsSnapshot and
	// cmd/ivyprof. Like DRace it implies DisableTLB so every write
	// reaches an instrumented checked tail; virtual time, fault counts,
	// and message counts are unchanged (profiling adds zero wire bytes —
	// see PROTOCOL.md). False — the default — costs one predicted branch
	// per instrument point.
	Profile bool

	// Horizon bounds a Run in virtual time (default 1000 hours); hitting
	// it makes Run fail, which is how runaway programs surface.
	Horizon time.Duration

	// Trace, when non-nil, enables the protocol span tracer (see
	// TraceConfig). Nil — the default — costs nothing at run time.
	Trace *TraceConfig
}

// NodeCrash schedules one node outage: the node's NIC goes dark at At
// and comes back at At+Downtime, recovering by the protocol's
// retransmission and ownership-chase paths. Node 0 hosts the central
// manager and allocator in the default wiring; crashing it stalls any
// workload that needs them until rejoin.
type NodeCrash struct {
	Node     int
	At       time.Duration
	Downtime time.Duration
}

// ChaosOpts parameterizes the fault plane (see internal/chaos for the
// semantics and the failure-model limits). All probabilities apply
// independently per per-receiver delivery attempt.
type ChaosOpts struct {
	// DuplicateProbability duplicates a delivery; the extra copy arrives
	// up to DuplicateDelay later (point-to-point frames only).
	DuplicateProbability float64
	DuplicateDelay       time.Duration

	// DelayProbability postpones a point-to-point delivery by up to
	// MaxDelay, letting later frames overtake it (bounded reordering).
	DelayProbability float64
	MaxDelay         time.Duration

	// LossProbability drops deliveries independently; BurstProbability
	// starts a burst eating the next BurstLength deliveries to the same
	// receiver (correlated loss).
	LossProbability  float64
	BurstProbability float64
	BurstLength      int

	// MaxFaults caps injected fault events (0 = unlimited) without
	// shifting the random schedule — the shrinker's knob.
	MaxFaults int

	// Crashes lists node outages.
	Crashes []NodeCrash

	// BreakInvalidation makes every node acknowledge invalidations
	// WITHOUT revoking its copy — a deliberately broken protocol for
	// proving the sequential-consistency checker catches real bugs.
	// Never set outside tests.
	BreakInvalidation bool

	// DropWriteNotice makes every release-consistency release commit its
	// diffs but drop the write notices — acquirers keep trusting stale
	// cached copies, the RC analogue of BreakInvalidation. Only
	// meaningful with Coherence CoherenceRC. Never set outside tests.
	DropWriteNotice bool
}

// withDefaults fills unset fields.
func (cfg Config) withDefaults() Config {
	if cfg.Processors == 0 {
		cfg.Processors = 1
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 1024
	}
	if cfg.SharedPages == 0 {
		cfg.SharedPages = 16384
	}
	if cfg.Costs == nil {
		c := model.Default1988()
		cfg.Costs = &c
	}
	if cfg.Balance == nil {
		b := proc.DefaultBalance()
		cfg.Balance = &b
	}
	if cfg.StackPages == 0 {
		cfg.StackPages = 4
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = 64 * 1024
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 1000 * time.Hour
	}
	if cfg.Coherence == "" {
		cfg.Coherence = CoherenceSC
	}
	return cfg
}
