package ivy

import (
	"testing"
	"time"

	"repro/internal/parallel"
)

// plantedRace is the racedemo bug in miniature: a writer fills data
// words and raises a plain flag word; a reader spins on the flag and
// consumes the data. Page coherence makes the reader see the values,
// but no program-level synchronization (eventcount, lock, spawn/join)
// orders the accesses — exactly what the detector must report.
func plantedRace(seed int64) []RaceReport {
	c := New(Config{Processors: 2, Seed: seed, DRace: true})
	err := c.Run(func(p *Proc) {
		const words = 8
		buf := p.MustMalloc(8 * (words + 1))
		flag := buf + 8*words
		p.WriteU64(flag, 0)

		done := p.NewEventcount(2)
		p.CreateOn(1, func(q *Proc) {
			for q.ReadU64(flag) == 0 {
				q.Sleep(time.Millisecond)
			}
			for i := uint64(0); i < words; i++ {
				q.ReadU64(buf + 8*i)
			}
			done.Advance(q)
		}, WithName("reader"))

		for i := uint64(0); i < words; i++ {
			p.WriteU64(buf+8*i, i+1)
		}
		p.WriteU64(flag, 1) // plain write: the planted race
		done.Wait(p, 1)
	})
	if err != nil {
		panic(err)
	}
	return c.RaceReports()
}

// TestDRacePlantedRaceDeterministic requires the detector to catch the
// planted race, and to produce the identical report list — same words,
// same threads, same virtual timestamps, same order — on every run of
// the same (seed, config). Three runs guard against any map-order or
// allocation-order leak into reporting; running them concurrently on
// separate host cores additionally pins that detector state is
// per-cluster (a process-global detector table would cross-talk here).
func TestDRacePlantedRaceDeterministic(t *testing.T) {
	const seed = 7
	runs := parallel.Map(parallel.Workers(0), 3, func(int) []RaceReport {
		return plantedRace(seed)
	})
	first := runs[0]
	if len(first) == 0 {
		t.Fatal("planted race not detected")
	}
	for run, got := range runs[1:] {
		if len(got) != len(first) {
			t.Fatalf("run %d: %d reports, first run had %d", run+2, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d report %d differs:\n  first: %v\n  this:  %v", run+2, i, got[i], first[i])
			}
		}
	}
}

// TestDRaceOffReportsNothing pins the off-by-default contract: the same
// racy program with DRace unset performs zero race checks and returns
// no reports.
func TestDRaceOffReportsNothing(t *testing.T) {
	c := New(Config{Processors: 2, Seed: 7})
	err := c.Run(func(p *Proc) {
		a := p.MustMalloc(16)
		done := p.NewEventcount(2)
		p.CreateOn(1, func(q *Proc) {
			q.WriteU64(a, 1)
			done.Advance(q)
		})
		p.WriteU64(a+8, 2)
		done.Wait(p, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RaceReports(); got != nil {
		t.Fatalf("detector off but RaceReports() = %v", got)
	}
	if n := c.Snapshot().Total().SVM.RaceChecks; n != 0 {
		t.Fatalf("detector off but %d accesses were race-checked", n)
	}
}
